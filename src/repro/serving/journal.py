"""Durable write-ahead journal for recorded workload queries.

The PR 4 conservation invariant — every query handed to ``record_query``
is published, pending, or spilled; none vanish — held only while the
process lived: a restart threw away the pending delta and the spill log
and forced a cold rebuild.  :class:`SpillJournal` extends the invariant
**across process death** by writing every recorded query to an
append-only log *before* the ingestion path acknowledges it.

On-disk layout (one directory per journal)::

    journal/
      segment-000000000001.log     records 1..N (first seq in the name)
      segment-000000000NNN.log     the active segment (highest name)
      CHECKPOINT                   {"seq": S} — records <= S are covered
                                   by a statistics snapshot

Each record is ``[u32 payload length][u32 CRC32(payload)][payload]``
(little endian), where the payload is the query's normalized SQL
(:meth:`WorkloadQuery.to_sql <repro.workload.model.WorkloadQuery.to_sql>`)
encoded as UTF-8 — a self-describing, replayable statement rather than a
pickled object.  Records are numbered by a global sequence starting at 1;
segment files are named by the sequence of their first record, so the
next sequence after a restart is recoverable by scanning the last
segment.

Durability knobs mirror the telemetry sink's ``fsync_policy``:
``"always"`` (fsync per append — the default, because an acked ``/record``
must survive SIGKILL), ``"rotate"`` (fsync on segment rotation,
checkpoint, and close), ``"never"`` (page cache only).  Segment rotation
and the CHECKPOINT file go through the atomic temp + fsync + rename
dance, so a crash at any point leaves either the old or the new file,
never a half-written one.

Recovery semantics (applied by the constructor — opening a journal *is*
recovering it):

* **Torn tail** — the final record of the final segment is incomplete or
  fails its CRC (a crash mid-append).  The file is truncated back to the
  last good record; the partial record was never acknowledged, so
  nothing acked is lost.  Counted in ``journal.truncated_records``.
* **Corrupt middle record** — a CRC failure *before* the end of the log
  (bit rot, a lying disk).  Fail-stop: the journal refuses to replay
  past the corruption, truncates there, and counts every dropped record
  (the corrupt one plus any parseable successors) in
  ``journal.truncated_records``.  Replaying records after a hole would
  apply queries out of arrival order, which the statistics fold assumes.
* **Empty journal / missing directory** — a no-op; the directory is
  created and sequence numbering starts at 1.

Crash-point fault sites (see :mod:`repro.serving.faults`):
``journal.append`` before any bytes are written, ``journal.append.torn``
between header and payload, ``journal.append.synced`` after the fsync,
and ``journal.checkpoint.rename`` between the CHECKPOINT temp write and
its rename.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Iterator

from repro import perf
from repro.serving.faults import NULL_INJECTOR, FaultInjector

#: ``[u32 payload length][u32 CRC32(payload)]`` little endian.
_RECORD_HEADER = struct.Struct("<II")

#: Allowed fsync policies, mirroring the telemetry sink's knob.
FSYNC_POLICIES = ("never", "rotate", "always")

#: Refuse absurd record lengths during recovery: a corrupt length field
#: must not make the scanner "skip" gigabytes of the file.
_MAX_RECORD_BYTES = 16 * 1024 * 1024

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".log"
_CHECKPOINT_NAME = "CHECKPOINT"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _fsync_dir(directory: Path) -> None:
    """Fsync a directory so renames inside it survive power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, payload: bytes, faults: FaultInjector | None = None,
                 rename_site: str | None = None) -> None:
    """Write ``payload`` to ``path`` via temp + fsync + rename.

    A crash before the rename leaves the old file (or nothing) in place;
    a crash after leaves the complete new file — never a torn one.  When
    ``rename_site`` is given, the fault site fires between the temp
    write and the rename (the "before rename" crash point).
    """
    injector = faults or NULL_INJECTOR
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    if rename_site is not None:
        injector.fire(rename_site)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class _Segment:
    """One journal segment's identity: first sequence, path, record count."""

    __slots__ = ("first_seq", "path", "records", "bytes")

    def __init__(self, first_seq: int, path: Path, records: int, size: int) -> None:
        self.first_seq = first_seq
        self.path = path
        self.records = records
        self.bytes = size

    @property
    def last_seq(self) -> int:
        return self.first_seq + self.records - 1


class SpillJournal:
    """Append-only, CRC-checksummed write-ahead log of recorded queries.

    Args:
        directory: the journal directory (created if missing).  Opening
            the journal runs recovery: torn tails are truncated, corrupt
            records fail-stop, and the next sequence number is derived
            from what survived.
        segment_bytes: rotate to a fresh segment once the active one
            exceeds this size.
        fsync: one of :data:`FSYNC_POLICIES`.
        faults: injector wired to the ``journal.*`` crash sites.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: str = "always",
        faults: FaultInjector | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self._faults = faults or NULL_INJECTOR
        self._lock = threading.Lock()
        self._truncated_records = 0
        self._segments: list[_Segment] = []
        self._recover_segments()
        if not self._segments:
            self._segments.append(
                _Segment(1, self.directory / _segment_name(1), 0, 0)
            )
        active = self._segments[-1]
        next_seq = active.first_seq + active.records
        checkpoint = self.checkpoint_seq
        if checkpoint >= next_seq:
            # Recovery truncated records the checkpoint already covered
            # (double failure: corruption below the snapshot's watermark).
            # Skip past the checkpoint so new appends never reuse covered
            # sequence numbers — replay(after=checkpoint) must see them.
            next_seq = checkpoint + 1
            active = _Segment(
                next_seq, self.directory / _segment_name(next_seq), 0, 0
            )
            self._segments.append(active)
        self._file = open(active.path, "ab")
        self._next_seq = next_seq
        self._update_gauges()

    # -- introspection -------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence of the newest durable record (0 = journal empty)."""
        return self._next_seq - 1

    @property
    def truncated_records(self) -> int:
        """Records dropped by recovery (torn tails + fail-stop corruption)."""
        return self._truncated_records

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def size_bytes(self) -> int:
        """Total bytes across all live segments."""
        return sum(segment.bytes for segment in self._segments)

    @property
    def checkpoint_seq(self) -> int:
        """The CHECKPOINT's covered sequence (0 when none written yet)."""
        path = self.directory / _CHECKPOINT_NAME
        try:
            data = json.loads(path.read_text())
            seq = data.get("seq")
            return seq if isinstance(seq, int) and seq >= 0 else 0
        except (OSError, ValueError):
            return 0

    # -- append path ---------------------------------------------------------

    def append(self, sql: str) -> int:
        """Durably append one normalized SQL statement; return its seq.

        The record is on disk (to the armed fsync policy) before this
        returns — callers ack ``/record`` only after the append, which is
        what makes "no acked query vanishes across SIGKILL" true.
        """
        payload = sql.encode("utf-8")
        header = _RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        with self._lock:
            self._faults.fire("journal.append")
            self._file.write(header)
            # The torn-write crash point: header bytes are out, payload
            # is not.  An armed crash here leaves exactly the torn tail
            # recovery must truncate.
            self._faults.fire("journal.append.torn")
            self._file.write(payload)
            self._file.flush()
            if self.fsync == "always":
                os.fsync(self._file.fileno())
            self._faults.fire("journal.append.synced")
            seq = self._next_seq
            self._next_seq += 1
            active = self._segments[-1]
            active.records += 1
            active.bytes += _RECORD_HEADER.size + len(payload)
            perf.count("journal.appends")
            if active.bytes >= self.segment_bytes:
                self._rotate_locked()
            self._update_gauges()
            return seq

    def _rotate_locked(self) -> None:
        """Seal the active segment and open a fresh one."""
        if self.fsync in ("rotate", "always"):
            os.fsync(self._file.fileno())
        self._file.close()
        first = self._next_seq
        segment = _Segment(first, self.directory / _segment_name(first), 0, 0)
        self._segments.append(segment)
        self._file = open(segment.path, "ab")
        _fsync_dir(self.directory)
        perf.count("journal.rotations")

    # -- replay path ---------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, str]]:
        """Yield ``(seq, sql)`` for every durable record with seq > after_seq.

        Reads the segment files directly (recovery already truncated any
        damage), so replay sees exactly what a restarted process would.
        """
        with self._lock:
            self._file.flush()
            segments = [
                (segment.first_seq, segment.path, segment.records)
                for segment in self._segments
            ]
        for first_seq, path, records in segments:
            if records == 0 or first_seq + records - 1 <= after_seq:
                continue
            seq = first_seq
            for payload in _scan_records(path, records):
                if seq > after_seq:
                    yield seq, payload.decode("utf-8")
                seq += 1

    # -- checkpoint / retention ----------------------------------------------

    def checkpoint(self, seq: int) -> None:
        """Mark records <= ``seq`` as covered by a snapshot; prune segments.

        The CHECKPOINT write is atomic; pruning only deletes sealed
        segments whose every record is covered, so a crash between the
        rename and the unlinks merely delays pruning to the next
        checkpoint.
        """
        with self._lock:
            payload = json.dumps({"seq": seq}).encode("utf-8")
            atomic_write(
                self.directory / _CHECKPOINT_NAME,
                payload,
                faults=self._faults,
                rename_site="journal.checkpoint.rename",
            )
            survivors = []
            for segment in self._segments:
                sealed = segment is not self._segments[-1]
                if sealed and segment.records > 0 and segment.last_seq <= seq:
                    try:
                        segment.path.unlink()
                    except OSError:
                        survivors.append(segment)
                    continue
                survivors.append(segment)
            self._segments = survivors
            perf.count("journal.checkpoints")
            self._update_gauges()

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Flush (and, unless policy is ``never``, fsync) the active segment."""
        with self._lock:
            self._file.flush()
            if self.fsync in ("rotate", "always"):
                os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            if self.fsync in ("rotate", "always"):
                os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "SpillJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _recover_segments(self) -> None:
        """Scan segments oldest-first, truncating damage (see module doc)."""
        paths = sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
        parsed: list[tuple[int, Path]] = []
        for path in paths:
            stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                parsed.append((int(stem), path))
            except ValueError:
                continue
        parsed.sort()
        failed_at: int | None = None
        for index, (first_seq, path) in enumerate(parsed):
            if failed_at is not None:
                # Fail-stop: a corrupt record in an earlier segment means
                # every later record would replay out of order.  Count
                # and delete them.
                self._truncated_records += sum(
                    1 for _ in _scan_records(path, None)
                )
                path.unlink()
                continue
            records, good_bytes, dropped, clean = _scan_segment(path)
            self._truncated_records += dropped
            if dropped:
                with open(path, "rb+") as handle:
                    handle.truncate(good_bytes)
                _fsync_dir(self.directory)
            self._segments.append(_Segment(first_seq, path, records, good_bytes))
            if not clean and index + 1 < len(parsed):
                failed_at = index
        if self._truncated_records:
            perf.count("journal.truncated_records", self._truncated_records)

    def _update_gauges(self) -> None:
        perf.gauge("ingest.journal_bytes", self.size_bytes)
        perf.gauge("ingest.journal_segments", len(self._segments))


def _scan_segment(path: Path) -> tuple[int, int, int, bool]:
    """Scan one segment; return (good records, good bytes, dropped, clean).

    ``dropped`` counts the corrupt record itself plus any parseable
    records after it (they are being abandoned by fail-stop, so the
    operator should know how many).  ``clean`` is False when the segment
    ended in damage rather than a tidy EOF.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return 0, 0, 0, True
    offset = 0
    records = 0
    while True:
        header = data[offset:offset + _RECORD_HEADER.size]
        if not header:
            return records, offset, 0, True
        if len(header) < _RECORD_HEADER.size:
            # Torn header at EOF: one partial, unacknowledged record.
            return records, offset, 1, False
        length, checksum = _RECORD_HEADER.unpack(header)
        start = offset + _RECORD_HEADER.size
        payload = data[start:start + length]
        if length > _MAX_RECORD_BYTES or len(payload) < length:
            # Torn payload (or an insane corrupt length): stop here.
            return records, offset, 1, False
        if zlib.crc32(payload) != checksum:
            # CRC failure: count this record and every still-parseable
            # successor as dropped, then fail-stop at this offset.
            dropped = 1 + _count_parseable(data, start + length)
            return records, offset, dropped, False
        records += 1
        offset = start + length


def _count_parseable(data: bytes, offset: int) -> int:
    """How many well-formed records follow ``offset`` (for drop counts)."""
    count = 0
    while True:
        header = data[offset:offset + _RECORD_HEADER.size]
        if len(header) < _RECORD_HEADER.size:
            return count + (1 if header else 0)
        length, _ = _RECORD_HEADER.unpack(header)
        start = offset + _RECORD_HEADER.size
        if length > _MAX_RECORD_BYTES or len(data) - start < length:
            return count + 1
        count += 1
        offset = start + length


def _scan_records(path: Path, expected: int | None) -> Iterator[bytes]:
    """Yield record payloads from a (recovered, trusted) segment file."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    offset = 0
    yielded = 0
    while expected is None or yielded < expected:
        header = data[offset:offset + _RECORD_HEADER.size]
        if len(header) < _RECORD_HEADER.size:
            return
        length, checksum = _RECORD_HEADER.unpack(header)
        start = offset + _RECORD_HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != checksum:
            return
        yield payload
        yielded += 1
        offset = start + length
