"""Tests for per-attribute statistics."""

import pytest

from repro.relational.schema import Attribute, TableSchema
from repro.relational.statistics import categorical_stats, numeric_stats, value_counts
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    schema = TableSchema(
        "T",
        (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT)),
    )
    t = Table(schema)
    t.extend(
        [
            {"city": "Seattle", "price": 100},
            {"city": "Seattle", "price": 300},
            {"city": "Bellevue", "price": 200},
            {"city": None, "price": None},
        ]
    )
    return t


class TestNumericStats:
    def test_basic(self, table):
        stats = numeric_stats(table, "price")
        assert stats.count == 3
        assert stats.null_count == 1
        assert (stats.minimum, stats.maximum) == (100.0, 300.0)
        assert stats.mean == pytest.approx(200.0)
        assert stats.extent == 200.0

    def test_all_null_returns_none(self, table):
        from repro.relational.expressions import InPredicate

        empty = table.select(InPredicate("price", [999]))
        assert numeric_stats(empty, "price") is None

    def test_works_on_rowset(self, table):
        from repro.relational.expressions import InPredicate

        rows = table.select(InPredicate("city", ["Seattle"]))
        stats = numeric_stats(rows, "price")
        assert stats.count == 2


class TestCategoricalStats:
    def test_frequencies_most_common_first(self, table):
        stats = categorical_stats(table, "city")
        assert stats.frequencies[0] == ("Seattle", 2)
        assert stats.distinct_count == 2
        assert stats.null_count == 1

    def test_most_common_limit(self, table):
        stats = categorical_stats(table, "city")
        assert len(stats.most_common(1)) == 1

    def test_deterministic_tie_order(self):
        schema = TableSchema("T", (Attribute("x", DataType.TEXT),))
        t = Table(schema)
        t.extend([{"x": "b"}, {"x": "a"}])
        stats = categorical_stats(t, "x")
        assert [v for v, _ in stats.frequencies] == ["a", "b"]

    def test_value_counts(self, table):
        assert value_counts(table, "city") == {"Seattle": 2, "Bellevue": 1}
