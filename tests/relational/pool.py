"""One fork pool shared by every sharded-backend test in the suite.

The sharded backend accepts an injected executor precisely so tests do
not pay a process-pool startup per hypothesis example (hundreds of
examples × ~100 ms apiece).  The pool is created lazily on first use and
torn down by ``concurrent.futures``' own atexit hook; backends using it
never own it, so closing a backend (or dropping a table) leaves it
running for the next example.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from multiprocessing import get_context

_SHARED: dict[str, Executor | None] = {"executor": None}


def shared_executor(workers: int = 2) -> Executor:
    """The lazily created suite-wide fork pool."""
    executor = _SHARED["executor"]
    if executor is None:
        executor = _SHARED["executor"] = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("fork")
        )
    return executor
