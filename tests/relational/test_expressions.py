"""Tests for selection predicates: evaluation, overlap, normalization."""

import math

import pytest

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    RangePredicate,
    TruePredicate,
    normalize,
)


class TestInPredicate:
    def test_matches(self):
        pred = InPredicate("city", ["Seattle", "Bellevue"])
        assert pred.matches({"city": "Seattle"})
        assert not pred.matches({"city": "Tacoma"})

    def test_null_never_matches(self):
        assert not InPredicate("city", ["Seattle"]).matches({"city": None})

    def test_missing_attribute_never_matches(self):
        assert not InPredicate("city", ["Seattle"]).matches({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            InPredicate("city", [])

    def test_overlap_on_shared_value(self):
        a = InPredicate("city", ["Seattle", "Bellevue"])
        b = InPredicate("city", ["Bellevue", "Redmond"])
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_disjoint(self):
        a = InPredicate("city", ["Seattle"])
        b = InPredicate("city", ["Redmond"])
        assert not a.overlaps(b)

    def test_no_overlap_different_attributes(self):
        a = InPredicate("city", ["Seattle"])
        b = InPredicate("state", ["Seattle"])
        assert not a.overlaps(b)

    def test_attributes(self):
        assert InPredicate("city", ["a"]).attributes() == frozenset({"city"})


class TestRangePredicate:
    def test_matches_inclusive(self):
        pred = RangePredicate("price", 100, 200)
        assert pred.matches({"price": 100})
        assert pred.matches({"price": 200})
        assert not pred.matches({"price": 201})

    def test_matches_half_open(self):
        pred = RangePredicate("price", 100, 200, high_inclusive=False)
        assert pred.matches({"price": 199})
        assert not pred.matches({"price": 200})

    def test_null_never_matches(self):
        assert not RangePredicate("price", 0, 10).matches({"price": None})

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty range"):
            RangePredicate("price", 200, 100)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            RangePredicate("price", math.nan, 10)

    def test_overlap_basic(self):
        a = RangePredicate("price", 100, 300)
        b = RangePredicate("price", 200, 400)
        assert a.overlaps(b)

    def test_no_overlap_disjoint(self):
        a = RangePredicate("price", 100, 200, high_inclusive=False)
        b = RangePredicate("price", 200, 300)
        # a is half-open at 200, so 200 belongs only to b.
        assert not a.overlaps(b)

    def test_overlap_touching_inclusive(self):
        a = RangePredicate("price", 100, 200)  # closed at 200
        b = RangePredicate("price", 200, 300)
        assert a.overlaps(b)

    def test_overlap_infinite_bounds(self):
        a = RangePredicate("price", -math.inf, 500_000)
        b = RangePredicate("price", 400_000, math.inf)
        assert a.overlaps(b)

    def test_width(self):
        assert RangePredicate("price", 100, 300).width() == 200


class TestComparisonPredicate:
    @pytest.mark.parametrize(
        "op,value,row_value,expected",
        [
            ("<", 10, 5, True),
            ("<", 10, 10, False),
            ("<=", 10, 10, True),
            (">", 10, 11, True),
            (">=", 10, 10, True),
            ("=", "x", "x", True),
            ("!=", "x", "y", True),
        ],
    )
    def test_operators(self, op, value, row_value, expected):
        pred = ComparisonPredicate("a", op, value)
        assert pred.matches({"a": row_value}) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ComparisonPredicate("a", "~", 1)

    def test_null_never_matches(self):
        assert not ComparisonPredicate("a", "<", 10).matches({"a": None})


class TestConjunction:
    def test_matches_all_parts(self):
        pred = Conjunction(
            [InPredicate("city", ["Seattle"]), RangePredicate("price", 0, 100)]
        )
        assert pred.matches({"city": "Seattle", "price": 50})
        assert not pred.matches({"city": "Seattle", "price": 150})

    def test_flattens_nested(self):
        inner = Conjunction([InPredicate("a", [1])])
        outer = Conjunction([inner, InPredicate("b", [2])])
        assert len(outer.parts) == 2

    def test_drops_true_predicates(self):
        pred = Conjunction([TruePredicate(), InPredicate("a", [1])])
        assert len(pred.parts) == 1

    def test_empty_conjunction_is_true(self):
        assert Conjunction([]).matches({"anything": 1})

    def test_attributes_union(self):
        pred = Conjunction(
            [InPredicate("a", [1]), RangePredicate("b", 0, 1)]
        )
        assert pred.attributes() == frozenset({"a", "b"})


class TestNormalize:
    def test_true_stays_true(self):
        assert isinstance(normalize(TruePredicate()), TruePredicate)

    def test_comparison_becomes_range(self):
        result = normalize(ComparisonPredicate("price", "<=", 100))
        assert isinstance(result, RangePredicate)
        assert result.high == 100 and result.high_inclusive

    def test_strict_less_becomes_exclusive_range(self):
        result = normalize(ComparisonPredicate("price", "<", 100))
        assert isinstance(result, RangePredicate)
        assert not result.high_inclusive

    def test_equality_on_string_becomes_in(self):
        result = normalize(ComparisonPredicate("city", "=", "Seattle"))
        assert isinstance(result, InPredicate)
        assert result.values == frozenset({"Seattle"})

    def test_equality_on_number_becomes_point_range(self):
        result = normalize(ComparisonPredicate("price", "=", 100))
        assert isinstance(result, RangePredicate)
        assert result.low == result.high == 100

    def test_two_ranges_intersected(self):
        pred = Conjunction(
            [
                RangePredicate("price", 100, 500),
                ComparisonPredicate("price", "<=", 300),
            ]
        )
        result = normalize(pred)
        assert isinstance(result, RangePredicate)
        assert (result.low, result.high) == (100, 300)

    def test_contradictory_ranges_rejected(self):
        pred = Conjunction(
            [RangePredicate("price", 400, 500), RangePredicate("price", 0, 100)]
        )
        with pytest.raises(ValueError, match="contradictory"):
            normalize(pred)

    def test_in_sets_intersected(self):
        pred = Conjunction(
            [InPredicate("city", ["a", "b"]), InPredicate("city", ["b", "c"])]
        )
        result = normalize(pred)
        assert isinstance(result, InPredicate)
        assert result.values == frozenset({"b"})

    def test_disjoint_in_sets_rejected(self):
        pred = Conjunction(
            [InPredicate("city", ["a"]), InPredicate("city", ["b"])]
        )
        with pytest.raises(ValueError, match="contradictory"):
            normalize(pred)

    def test_mixed_in_and_range_on_one_attribute_rejected(self):
        pred = Conjunction(
            [InPredicate("x", [1]), RangePredicate("x", 0, 2)]
        )
        with pytest.raises(ValueError, match="mixes"):
            normalize(pred)

    def test_multiple_attributes_sorted_into_conjunction(self):
        pred = Conjunction(
            [RangePredicate("price", 0, 1), InPredicate("city", ["a"])]
        )
        result = normalize(pred)
        assert isinstance(result, Conjunction)
        assert [next(iter(p.attributes())) for p in result.parts] == ["city", "price"]

    def test_not_equal_rejected(self):
        with pytest.raises(ValueError):
            normalize(ComparisonPredicate("a", "!=", 1))
