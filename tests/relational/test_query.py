"""Tests for SPJ query representation and execution."""

import math

import pytest

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    schema = TableSchema(
        "Homes",
        (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT)),
    )
    t = Table(schema)
    t.extend(
        [
            {"city": "Seattle", "price": 300},
            {"city": "Bellevue", "price": 500},
            {"city": "Seattle", "price": 700},
        ]
    )
    return t


class TestConditions:
    def test_empty_query_has_no_conditions(self):
        assert SelectQuery("Homes").conditions() == {}

    def test_conditions_are_per_attribute(self):
        query = SelectQuery(
            "Homes",
            Conjunction(
                [
                    InPredicate("city", ["Seattle"]),
                    ComparisonPredicate("price", "<=", 500),
                ]
            ),
        )
        conditions = query.conditions()
        assert set(conditions) == {"city", "price"}
        assert isinstance(conditions["price"], RangePredicate)

    def test_range_on(self):
        query = SelectQuery("Homes", RangePredicate("price", 100, 500))
        assert query.range_on("price") == (100, 500)

    def test_range_on_one_sided(self):
        query = SelectQuery("Homes", ComparisonPredicate("price", "<=", 500))
        low, high = query.range_on("price")
        assert math.isinf(low) and high == 500

    def test_range_on_absent(self):
        assert SelectQuery("Homes").range_on("price") is None

    def test_values_on(self):
        query = SelectQuery("Homes", InPredicate("city", ["Seattle", "Bellevue"]))
        assert query.values_on("city") == frozenset({"Seattle", "Bellevue"})

    def test_values_on_absent(self):
        assert SelectQuery("Homes").values_on("city") is None


class TestExecution:
    def test_execute_selects(self, table):
        query = SelectQuery("Homes", InPredicate("city", ["Seattle"]))
        assert len(query.execute(table)) == 2

    def test_execute_true_returns_all(self, table):
        assert len(SelectQuery("Homes").execute(table)) == 3

    def test_wrong_table_name_rejected(self, table):
        with pytest.raises(ValueError, match="targets table"):
            SelectQuery("Other").execute(table)

    def test_unknown_attribute_rejected(self, table):
        query = SelectQuery("Homes", InPredicate("bogus", ["x"]))
        with pytest.raises(ValueError, match="unknown attributes"):
            query.execute(table)

    def test_unknown_projection_rejected(self, table):
        query = SelectQuery("Homes", projection=("bogus",))
        with pytest.raises(KeyError):
            query.execute(table)

    def test_conjunction_execution(self, table):
        query = SelectQuery(
            "Homes",
            Conjunction(
                [InPredicate("city", ["Seattle"]), RangePredicate("price", 0, 400)]
            ),
        )
        result = query.execute(table)
        assert [r["price"] for r in result] == [300]


class TestDisplay:
    def test_str_without_where(self):
        assert str(SelectQuery("Homes")) == "SELECT * FROM Homes"

    def test_str_with_projection(self):
        query = SelectQuery("Homes", projection=("city", "price"))
        assert str(query) == "SELECT city, price FROM Homes"

    def test_str_with_where(self):
        query = SelectQuery("Homes", RangePredicate("price", 1, 2))
        assert "WHERE" in str(query)

    def test_normalized_is_equivalent(self, table):
        query = SelectQuery(
            "Homes",
            Conjunction(
                [
                    ComparisonPredicate("price", ">=", 400),
                    ComparisonPredicate("price", "<=", 600),
                ]
            ),
        )
        raw = {r.index for r in query.execute(table)}
        normalized = {r.index for r in query.normalized().execute(table)}
        assert raw == normalized

    def test_normalized_predicate_is_canonical(self):
        query = SelectQuery("Homes", ComparisonPredicate("price", ">=", 400))
        assert isinstance(query.normalized().predicate, RangePredicate)

    def test_default_predicate_is_true(self):
        assert isinstance(SelectQuery("Homes").predicate, TruePredicate)
