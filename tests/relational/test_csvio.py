"""Tests for CSV round-trip."""

import pytest

from repro.relational.csvio import read_csv, write_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def schema():
    return TableSchema(
        "T",
        (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT)),
    )


@pytest.fixture
def table(schema):
    t = Table(schema)
    t.extend(
        [
            {"city": "Seattle, WA", "price": 100},
            {"city": None, "price": 200},
            {"city": "Bellevue", "price": None},
        ]
    )
    return t


class TestRoundTrip:
    def test_preserves_rows_and_nulls(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert loaded.to_dicts() == table.to_dicts()

    def test_comma_in_value_survives(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert loaded.row(0)["city"] == "Seattle, WA"

    def test_types_restored(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert isinstance(loaded.row(0)["price"], int)


class TestReadErrors:
    def test_empty_file_rejected(self, schema, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(schema, path)

    def test_missing_column_rejected(self, schema, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("city\nSeattle\n")
        with pytest.raises(ValueError, match="missing attributes"):
            read_csv(schema, path)

    def test_bad_value_reports_line(self, schema, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("city,price\nSeattle,abc\n")
        with pytest.raises(ValueError, match=":2:"):
            read_csv(schema, path)

    def test_extra_columns_ignored(self, schema, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("city,price,extra\nSeattle,100,zzz\n")
        loaded = read_csv(schema, path)
        assert loaded.to_dicts() == [{"city": "Seattle", "price": 100}]

    def test_short_row_padded_with_nulls(self, schema, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("city,price\nSeattle\n")
        loaded = read_csv(schema, path)
        assert loaded.row(0)["price"] is None


class TestLenientMode:
    """``strict=False``: skip-with-counter instead of aborting the load."""

    @pytest.fixture
    def perf_on(self):
        from repro import perf

        perf.reset()
        perf.enable()
        yield perf.ACTIVE
        perf.reset()
        perf.disable()

    def test_bad_type_skipped_and_counted(self, schema, tmp_path, perf_on):
        path = tmp_path / "t.csv"
        path.write_text("city,price\nSeattle,abc\nBellevue,200\n")
        loaded = read_csv(schema, path, strict=False)
        assert loaded.to_dicts() == [{"city": "Bellevue", "price": 200}]
        assert perf_on.counters["csv.bad_rows{reason=type}"] == 1

    def test_bad_arity_skipped_and_counted(self, schema, tmp_path, perf_on):
        path = tmp_path / "a.csv"
        path.write_text("city,price\nSeattle\nKirkland,100,extra,junk\nBellevue,200\n")
        loaded = read_csv(schema, path, strict=False)
        assert loaded.to_dicts() == [{"city": "Bellevue", "price": 200}]
        assert perf_on.counters["csv.bad_rows{reason=arity}"] == 2

    def test_good_rows_counted(self, schema, tmp_path, perf_on):
        path = tmp_path / "g.csv"
        path.write_text("city,price\nSeattle,100\nBellevue,abc\n")
        read_csv(schema, path, strict=False)
        assert perf_on.counters["csv.rows_loaded"] == 1

    def test_clean_file_identical_between_modes(self, table, schema, tmp_path):
        path = tmp_path / "c.csv"
        write_csv(table, path)
        assert (
            read_csv(schema, path, strict=False).to_dicts()
            == read_csv(schema, path).to_dicts()
        )

    def test_header_errors_still_raise(self, schema, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("city\nSeattle\n")
        with pytest.raises(ValueError, match="missing attributes"):
            read_csv(schema, path, strict=False)
