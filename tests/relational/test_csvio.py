"""Tests for CSV round-trip."""

import pytest

from repro.relational.csvio import read_csv, write_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def schema():
    return TableSchema(
        "T",
        (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT)),
    )


@pytest.fixture
def table(schema):
    t = Table(schema)
    t.extend(
        [
            {"city": "Seattle, WA", "price": 100},
            {"city": None, "price": 200},
            {"city": "Bellevue", "price": None},
        ]
    )
    return t


class TestRoundTrip:
    def test_preserves_rows_and_nulls(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert loaded.to_dicts() == table.to_dicts()

    def test_comma_in_value_survives(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert loaded.row(0)["city"] == "Seattle, WA"

    def test_types_restored(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(schema, path)
        assert isinstance(loaded.row(0)["price"], int)


class TestReadErrors:
    def test_empty_file_rejected(self, schema, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(schema, path)

    def test_missing_column_rejected(self, schema, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("city\nSeattle\n")
        with pytest.raises(ValueError, match="missing attributes"):
            read_csv(schema, path)

    def test_bad_value_reports_line(self, schema, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("city,price\nSeattle,abc\n")
        with pytest.raises(ValueError, match=":2:"):
            read_csv(schema, path)

    def test_extra_columns_ignored(self, schema, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("city,price,extra\nSeattle,100,zzz\n")
        loaded = read_csv(schema, path)
        assert loaded.to_dicts() == [{"city": "Seattle", "price": 100}]

    def test_short_row_padded_with_nulls(self, schema, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("city,price\nSeattle\n")
        loaded = read_csv(schema, path)
        assert loaded.row(0)["price"] is None
