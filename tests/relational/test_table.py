"""Tests for the column-store Table and RowSet views."""

import pytest

from repro.relational.expressions import InPredicate, RangePredicate, TruePredicate
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    schema = TableSchema(
        "Homes",
        (
            Attribute("city", DataType.TEXT),
            Attribute("price", DataType.INT),
        ),
    )
    t = Table(schema)
    t.extend(
        [
            {"city": "Seattle", "price": 300},
            {"city": "Bellevue", "price": 500},
            {"city": "Seattle", "price": 400},
            {"city": "Redmond", "price": None},
        ]
    )
    return t


class TestTable:
    def test_len(self, table):
        assert len(table) == 4

    def test_row_access(self, table):
        assert table.row(1)["city"] == "Bellevue"

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(4)

    def test_row_is_mapping(self, table):
        row = table.row(0)
        assert dict(row) == {"city": "Seattle", "price": 300}
        assert len(row) == 2

    def test_insert_coerces(self, table):
        table.insert({"city": "Kirkland", "price": "250"})
        assert table.row(4)["price"] == 250

    def test_insert_unknown_attribute_rejected(self, table):
        with pytest.raises(KeyError, match="unknown attributes"):
            table.insert({"city": "X", "bogus": 1})

    def test_missing_attribute_becomes_null(self, table):
        table.insert({"city": "Kirkland"})
        assert table.row(4)["price"] is None

    def test_column_access(self, table):
        assert list(table.column("price")) == [300, 500, 400, None]

    def test_column_unknown_raises(self, table):
        with pytest.raises(KeyError, match="available"):
            table.column("bogus")

    def test_iteration_yields_all_rows(self, table):
        assert sum(1 for _ in table) == 4

    def test_to_dicts(self, table):
        dicts = table.to_dicts()
        assert dicts[1] == {"city": "Bellevue", "price": 500}


class TestRowSetSelection:
    def test_select_in(self, table):
        rows = table.select(InPredicate("city", ["Seattle"]))
        assert len(rows) == 2

    def test_select_range(self, table):
        rows = table.select(RangePredicate("price", 350, 600))
        assert {r["city"] for r in rows} == {"Bellevue", "Seattle"}

    def test_select_true_returns_same_view(self, table):
        view = table.all_rows()
        assert view.select(TruePredicate()) is view

    def test_null_excluded_from_range(self, table):
        rows = table.select(RangePredicate("price", 0, 10_000))
        assert len(rows) == 3

    def test_chained_selection(self, table):
        rows = table.select(InPredicate("city", ["Seattle"]))
        narrowed = rows.select(RangePredicate("price", 350, 600))
        assert len(narrowed) == 1
        assert narrowed.to_dicts()[0]["price"] == 400

    def test_empty_rowset_falsy(self, table):
        rows = table.select(InPredicate("city", ["Nowhere"]))
        assert not rows
        assert len(rows) == 0


class TestRowSetOperations:
    def test_partition_by(self, table):
        parts = table.all_rows().partition_by(lambda r: r["city"])
        assert set(parts) == {"Seattle", "Bellevue", "Redmond"}
        assert len(parts["Seattle"]) == 2

    def test_partition_by_drops_none_keys(self, table):
        parts = table.all_rows().partition_by(lambda r: r["price"])
        assert None not in parts
        assert sum(len(p) for p in parts.values()) == 3

    def test_partition_preserves_disjointness(self, table):
        parts = table.all_rows().partition_by(lambda r: r["city"])
        all_indices = [i for p in parts.values() for i in p.indices]
        assert len(all_indices) == len(set(all_indices))

    def test_values(self, table):
        assert table.all_rows().values("price") == [300, 500, 400, None]

    def test_distinct_values_excludes_null(self, table):
        assert table.all_rows().distinct_values("price") == {300, 400, 500}

    def test_min_max(self, table):
        assert table.all_rows().min_max("price") == (300, 500)

    def test_min_max_all_null_is_none(self, table):
        rows = table.select(InPredicate("city", ["Redmond"]))
        assert rows.min_max("price") is None

    def test_indices_refer_to_base_table(self, table):
        rows = table.select(InPredicate("city", ["Seattle"]))
        assert rows.indices == (0, 2)


class TestGroupbyIndex:
    def test_maps_value_to_ascending_indices(self, table):
        index = table.groupby_index("city")
        assert index["Seattle"] == (0, 2)
        assert index["Bellevue"] == (1,)
        assert index["Redmond"] == (3,)

    def test_nulls_grouped_under_none(self, table):
        index = table.groupby_index("price")
        assert index[None] == (3,)

    def test_cached_instance_reused(self, table):
        assert table.groupby_index("city") is table.groupby_index("city")

    def test_insert_invalidates(self, table):
        before = table.groupby_index("city")
        table.insert({"city": "Seattle", "price": 700})
        after = table.groupby_index("city")
        assert after is not before
        assert after["Seattle"] == (0, 2, 4)

    def test_unknown_attribute_raises(self, table):
        with pytest.raises(KeyError):
            table.groupby_index("bogus")


class TestRowSetAscending:
    def test_all_rows_ascending(self, table):
        assert table.all_rows().is_ascending

    def test_selection_stays_ascending(self, table):
        assert table.select(InPredicate("city", ["Seattle"])).is_ascending

    def test_shuffled_view_not_ascending(self, table):
        from repro.relational.table import RowSet

        assert not RowSet(table, (2, 0, 1)).is_ascending

    def test_empty_and_singleton_ascending(self, table):
        from repro.relational.table import RowSet

        assert RowSet(table, ()).is_ascending
        assert RowSet(table, (2,)).is_ascending


class TestRowSetDerive:
    def test_build_once_then_served_from_cache(self, table):
        rows = table.all_rows()
        calls = []

        def build():
            calls.append(1)
            return [1, 2, 3]

        first = rows.derive("key", build)
        second = rows.derive("key", build)
        assert first is second
        assert len(calls) == 1

    def test_distinct_keys_independent(self, table):
        rows = table.all_rows()
        assert rows.derive("a", lambda: "A") == "A"
        assert rows.derive("b", lambda: "B") == "B"

    def test_caches_none_results(self, table):
        rows = table.all_rows()
        calls = []

        def build():
            calls.append(1)
            return None

        assert rows.derive("nothing", build) is None
        assert rows.derive("nothing", build) is None
        assert len(calls) == 1

    def test_views_do_not_share_caches(self, table):
        everything = table.all_rows()
        subset = table.select(InPredicate("city", ["Seattle"]))
        everything.derive("k", lambda: "all")
        assert subset.derive("k", lambda: "sub") == "sub"


class TestInsertAtomicity:
    def test_failed_coercion_leaves_table_unchanged(self, table):
        size = len(table)
        with pytest.raises((TypeError, ValueError)):
            table.insert({"city": "Kirkland", "price": "not-a-number"})
        assert len(table) == size
        # Columns must not be torn: a subsequent good insert stays aligned.
        table.insert({"city": "Kirkland", "price": 700})
        assert table.row(len(table) - 1) == {"city": "Kirkland", "price": 700}
