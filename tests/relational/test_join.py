"""Tests for star-schema joins."""

import pytest

from repro.relational.join import DimensionJoin, join_star
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType


@pytest.fixture
def star():
    location = Table(
        TableSchema(
            "Location",
            (
                Attribute("locid", DataType.INT, AttributeKind.CATEGORICAL,
                          nullable=False),
                Attribute("city", DataType.TEXT),
            ),
        )
    )
    location.extend([{"locid": 1, "city": "Seattle"}, {"locid": 2, "city": "Bellevue"}])
    fact = Table(
        TableSchema(
            "Listing",
            (
                Attribute("locid", DataType.INT, AttributeKind.CATEGORICAL),
                Attribute("price", DataType.INT),
            ),
        )
    )
    fact.extend(
        [
            {"locid": 1, "price": 300},
            {"locid": 2, "price": 500},
            {"locid": 1, "price": 400},
        ]
    )
    return fact, location


class TestJoinStar:
    def test_wide_rows(self, star):
        fact, location = star
        wide = join_star(fact, [DimensionJoin(location, "locid", "locid")])
        assert wide.to_dicts() == [
            {"price": 300, "city": "Seattle"},
            {"price": 500, "city": "Bellevue"},
            {"price": 400, "city": "Seattle"},
        ]

    def test_default_name(self, star):
        fact, location = star
        wide = join_star(fact, [DimensionJoin(location, "locid", "locid")])
        assert wide.schema.name == "Listing_wide"

    def test_keep_keys(self, star):
        fact, location = star
        wide = join_star(
            fact, [DimensionJoin(location, "locid", "locid")], drop_keys=False
        )
        assert "locid" in wide.schema.names()

    def test_null_fk_gives_null_dimension(self, star):
        fact, location = star
        fact.insert({"locid": None, "price": 999})
        wide = join_star(fact, [DimensionJoin(location, "locid", "locid")])
        assert wide.to_dicts()[-1] == {"price": 999, "city": None}

    def test_dangling_fk_rejected(self, star):
        fact, location = star
        fact.insert({"locid": 42, "price": 1})
        with pytest.raises(ValueError, match="no 'Location' row"):
            join_star(fact, [DimensionJoin(location, "locid", "locid")])

    def test_duplicate_dimension_key_rejected(self, star):
        fact, location = star
        location.insert({"locid": 1, "city": "Duplicate"})
        with pytest.raises(ValueError, match="duplicate"):
            join_star(fact, [DimensionJoin(location, "locid", "locid")])

    def test_attribute_collision_rejected(self):
        dim = Table(
            TableSchema(
                "D",
                (
                    Attribute("id", DataType.INT, AttributeKind.CATEGORICAL),
                    Attribute("price", DataType.INT),
                ),
            )
        )
        dim.insert({"id": 1, "price": 7})
        fact = Table(
            TableSchema(
                "F",
                (
                    Attribute("id", DataType.INT, AttributeKind.CATEGORICAL),
                    Attribute("price", DataType.INT),
                ),
            )
        )
        fact.insert({"id": 1, "price": 300})
        with pytest.raises(ValueError, match="both"):
            join_star(fact, [DimensionJoin(dim, "id", "id")], drop_keys=False)

    def test_unknown_fk_rejected(self, star):
        fact, location = star
        with pytest.raises(KeyError):
            join_star(fact, [DimensionJoin(location, "bogus", "locid")])

    def test_two_dimensions(self, star):
        fact, location = star
        agent = Table(
            TableSchema(
                "Agent",
                (
                    Attribute("agentid", DataType.INT, AttributeKind.CATEGORICAL),
                    Attribute("agency", DataType.TEXT),
                ),
            )
        )
        agent.extend([{"agentid": 9, "agency": "Acme"}])
        fact2 = Table(
            TableSchema(
                "Listing2",
                (
                    Attribute("locid", DataType.INT, AttributeKind.CATEGORICAL),
                    Attribute("agentid", DataType.INT, AttributeKind.CATEGORICAL),
                    Attribute("price", DataType.INT),
                ),
            )
        )
        fact2.insert({"locid": 1, "agentid": 9, "price": 250})
        wide = join_star(
            fact2,
            [
                DimensionJoin(location, "locid", "locid"),
                DimensionJoin(agent, "agentid", "agentid"),
            ],
        )
        assert wide.to_dicts() == [
            {"price": 250, "city": "Seattle", "agency": "Acme"}
        ]


class TestNormalizedHomes:
    def test_round_trip_reconstructs_wide_table(self):
        from repro.data.homes import generate_homes
        from repro.data.star import normalize_homes, widen_star

        original = generate_homes(rows=500, seed=3)
        fact, location = normalize_homes(original)
        assert len(fact) == 500
        assert len(location) == len(set(original.column("neighborhood")))
        rebuilt = widen_star(fact, location)
        # Same tuples, modulo attribute order.
        original_rows = [
            {k: row[k] for k in sorted(row)} for row in original.to_dicts()
        ]
        rebuilt_rows = [
            {k: row[k] for k in sorted(row)} for row in rebuilt.to_dicts()
        ]
        assert rebuilt_rows == original_rows

    def test_wide_table_categorizes(self, statistics):
        from repro.data.homes import generate_homes
        from repro.data.star import normalize_homes, widen_star
        from repro.core.algorithm import CostBasedCategorizer
        from repro.relational.expressions import InPredicate
        from repro.relational.query import SelectQuery
        from repro.data.geography import SEATTLE_BELLEVUE

        fact, location = normalize_homes(generate_homes(rows=2_000, seed=5))
        wide = widen_star(fact, location)
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        tree = CostBasedCategorizer(statistics).categorize(
            query.execute(wide), query
        )
        tree.validate()
        assert tree.depth() >= 1
