"""Tests for the storage-backend layer (RowStore / ColumnStore).

The columnar backend must be *semantically invisible*: every Table /
RowSet operation returns the same logical values as the row backend, NULL
contracts included.  These are targeted unit tests; the randomized
cross-backend checks live in ``test_backend_equivalence.py``.
"""

import pytest

from repro import perf
from repro.relational.backends import (
    BACKEND_NAMES,
    ColumnStore,
    DictColumn,
    IntColumn,
    RowStore,
    make_backend,
)
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


def homes_schema() -> TableSchema:
    return TableSchema(
        "Homes",
        (
            Attribute("city", DataType.TEXT),
            Attribute("price", DataType.INT),
            Attribute("bath", DataType.FLOAT),
        ),
    )


ROWS = [
    {"city": "Seattle", "price": 300, "bath": 1.5},
    {"city": "Bellevue", "price": 500, "bath": 2.5},
    {"city": "Seattle", "price": 400, "bath": None},
    {"city": "Redmond", "price": None, "bath": 2.0},
    {"city": None, "price": 250, "bath": 1.0},
]


@pytest.fixture(params=BACKEND_NAMES)
def table(request):
    t = Table(homes_schema(), backend=request.param)
    t.extend(ROWS)
    return t


@pytest.fixture
def columnar():
    t = Table(homes_schema(), backend="columnar")
    t.extend(ROWS)
    return t


class TestBackendRegistry:
    def test_make_backend_names(self):
        schema = homes_schema()
        assert isinstance(make_backend("rows", schema), RowStore)
        assert isinstance(make_backend("columnar", schema), ColumnStore)

    def test_make_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            make_backend("parquet", homes_schema())

    def test_table_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            Table(homes_schema(), backend="parquet")

    def test_backend_name_property(self):
        assert Table(homes_schema()).backend_name == "rows"
        assert Table(homes_schema(), backend="columnar").backend_name == "columnar"


class TestBasicsOnBothBackends:
    """Every Table contract from test_table.py, parametrized over backends."""

    def test_len_and_iteration(self, table):
        assert len(table) == 5
        assert sum(1 for _ in table) == 5

    def test_row_access(self, table):
        assert table.row(1)["city"] == "Bellevue"
        assert dict(table.row(3)) == {"city": "Redmond", "price": None, "bath": 2.0}

    def test_column_values_with_nulls(self, table):
        assert list(table.column("price")) == [300, 500, 400, None, 250]
        assert list(table.column("city"))[3:] == ["Redmond", None]
        assert list(table.column("bath")) == [1.5, 2.5, None, 2.0, 1.0]

    def test_column_unknown_raises(self, table):
        with pytest.raises(KeyError, match="available"):
            table.column("bogus")

    def test_insert_coerces(self, table):
        table.insert({"city": "Kirkland", "price": "275", "bath": "1"})
        row = table.row(5)
        assert row["price"] == 275
        assert row["bath"] == 1.0

    def test_missing_attribute_becomes_null(self, table):
        table.insert({"city": "Kirkland"})
        assert table.row(5)["price"] is None
        assert table.row(5)["bath"] is None

    def test_to_dicts(self, table):
        assert table.to_dicts() == ROWS

    def test_values_and_distinct(self, table):
        rows = table.all_rows()
        assert rows.values("price") == [300, 500, 400, None, 250]
        assert rows.distinct_values("city") == {"Seattle", "Bellevue", "Redmond"}

    def test_min_max(self, table):
        assert table.all_rows().min_max("price") == (250, 500)


class TestSelectionOnBothBackends:
    def test_select_in(self, table):
        assert table.select(InPredicate("city", ["Seattle"])).indices == (0, 2)

    def test_select_in_unknown_value(self, table):
        assert len(table.select(InPredicate("city", ["Nowhere"]))) == 0

    def test_select_in_with_null_value_matches_null_rows(self, table):
        # Row-at-a-time, ``row.get(attr) in {None, ...}`` matches NULLs;
        # the code path for NULL_CODE must agree.
        rows = table.select(InPredicate("city", ["Seattle", None]))
        assert rows.indices == (0, 2, 4)

    def test_select_in_numeric(self, table):
        assert table.select(InPredicate("price", [300, 250])).indices == (0, 4)

    def test_select_range_excludes_null(self, table):
        rows = table.select(RangePredicate("price", 0, 10_000))
        assert rows.indices == (0, 1, 2, 4)

    def test_select_range_exclusive_upper(self, table):
        rows = table.select(
            RangePredicate("price", 250, 400, high_inclusive=False)
        )
        assert rows.indices == (0, 4)

    def test_select_comparison_ops(self, table):
        assert table.select(ComparisonPredicate("price", ">=", 400)).indices == (1, 2)
        assert table.select(ComparisonPredicate("price", "!=", 300)).indices == (
            1,
            2,
            4,
        )
        assert table.select(ComparisonPredicate("bath", "<", 2.0)).indices == (0, 4)

    def test_select_comparison_on_text_ordering(self, table):
        # Ordering over strings is well-defined and must work on the
        # dictionary-encoded column too.
        rows = table.select(ComparisonPredicate("city", "<", "Redmond"))
        assert rows.indices == (1,)

    def test_select_equality_on_text(self, table):
        assert table.select(ComparisonPredicate("city", "=", "Seattle")).indices == (
            0,
            2,
        )

    def test_select_is_null(self, table):
        assert table.select(IsNullPredicate("price")).indices == (3,)
        assert table.select(IsNullPredicate("city")).indices == (4,)

    def test_select_is_null_no_nulls(self, table):
        table.insert({"city": "X", "price": 1, "bath": 1.0})
        fresh = Table(homes_schema(), backend=table.backend_name)
        fresh.extend([{"city": "A", "price": 1, "bath": 1.0}])
        assert len(fresh.select(IsNullPredicate("price"))) == 0

    def test_select_true_returns_same_view(self, table):
        view = table.all_rows()
        assert view.select(TruePredicate()) is view

    def test_select_conjunction(self, table):
        rows = table.select(
            Conjunction(
                (
                    InPredicate("city", ["Seattle", "Bellevue"]),
                    RangePredicate("price", 350, 600),
                )
            )
        )
        assert rows.indices == (1, 2)

    def test_chained_selection(self, table):
        rows = table.select(InPredicate("city", ["Seattle"]))
        narrowed = rows.select(RangePredicate("price", 350, 600))
        assert narrowed.indices == (2,)

    def test_select_unknown_attribute_matches_nothing(self, table):
        # Predicates read rows via Mapping.get -> None, so an unknown
        # attribute silently matches nothing on both backends.
        assert len(table.select(InPredicate("bogus", ["x"]))) == 0
        assert len(table.select(RangePredicate("bogus", 0, 1))) == 0

    def test_range_on_text_raises_type_error(self, table):
        # The row engine raises comparing str to float; the columnar
        # backend must defer to the row path and raise identically.
        with pytest.raises(TypeError):
            table.select(RangePredicate("city", 0, 10))

    def test_ordering_against_non_number_on_numeric_raises(self, table):
        with pytest.raises(TypeError):
            table.select(ComparisonPredicate("price", "<", "expensive"))

    def test_error_conjunct_order_preserved(self, table):
        # city IN (...) runs first and narrows to zero candidates, so the
        # TypeError-raising range conjunct is never evaluated — on either
        # backend.
        rows = table.select(
            Conjunction(
                (
                    InPredicate("city", ["Nowhere"]),
                    RangePredicate("city", 0, 10),
                )
            )
        )
        assert len(rows) == 0


class TestGroupbyOnBothBackends:
    def test_groupby_text(self, table):
        index = table.groupby_index("city")
        assert index["Seattle"] == (0, 2)
        assert index["Bellevue"] == (1,)
        assert index[None] == (4,)

    def test_groupby_numeric_nulls(self, table):
        index = table.groupby_index("price")
        assert index[None] == (3,)
        assert index[300] == (0,)

    def test_groupby_values_are_tuples(self, table):
        assert all(
            isinstance(ids, tuple) for ids in table.groupby_index("city").values()
        )

    def test_insert_invalidates(self, table):
        before = table.groupby_index("city")
        table.insert({"city": "Seattle", "price": 700, "bath": 1.0})
        after = table.groupby_index("city")
        assert after is not before
        assert after["Seattle"] == (0, 2, 5)


class TestColumnarSpecifics:
    def test_dictionary_interning(self, columnar):
        column = columnar.column("city")
        assert isinstance(column, DictColumn)
        assert column.cardinality == 3  # Seattle, Bellevue, Redmond
        assert column.code_of("Seattle") == 0
        assert column.code_of("Nowhere") is None

    def test_int_column_packed(self, columnar):
        column = columnar.column("price")
        assert isinstance(column, IntColumn)
        assert column[0] == 300
        assert column[3] is None
        assert column[-1] == 250  # negative indexing, like a list

    def test_int64_overflow_raises(self, columnar):
        with pytest.raises(OverflowError):
            columnar.insert({"city": "X", "price": 2**63, "bath": 1.0})

    def test_overflow_insert_is_atomic(self, columnar):
        before = columnar.to_dicts()
        with pytest.raises(OverflowError):
            columnar.insert({"city": "Y", "price": 2**63, "bath": 1.0})
        assert len(columnar) == 5
        assert columnar.to_dicts() == before
        # The next insert must land aligned across all columns.
        columnar.insert({"city": "Y", "price": 42, "bath": 3.0})
        assert dict(columnar.row(5)) == {"city": "Y", "price": 42, "bath": 3.0}

    def test_row_backend_accepts_big_ints(self):
        t = Table(homes_schema(), backend="rows")
        t.insert({"city": "X", "price": 2**100, "bath": 1.0})
        assert t.row(0)["price"] == 2**100

    def test_bulk_extend_with_nulls_rolls_back_cleanly(self):
        # load_columns hits array.extend's fast path, which trips on None
        # mid-batch; the rollback must leave values intact and ordered.
        t = Table.from_columns(
            homes_schema(),
            {
                "city": ["A", "B", "C"],
                "price": [1, None, 3],
                "bath": [None, 2.0, None],
            },
            backend="columnar",
        )
        assert t.all_rows().values("price") == [1, None, 3]
        assert t.all_rows().values("bath") == [None, 2.0, None]


class TestFromColumns:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_round_trip(self, backend):
        t = Table.from_columns(
            homes_schema(),
            {
                "city": ["A", "B"],
                "price": ["100", 200],  # coerced
                "bath": [1, None],
            },
            backend=backend,
        )
        assert t.to_dicts() == [
            {"city": "A", "price": 100, "bath": 1.0},
            {"city": "B", "price": 200, "bath": None},
        ]

    def test_missing_column_raises(self):
        with pytest.raises(KeyError, match="missing"):
            Table.from_columns(homes_schema(), {"city": ["A"], "price": [1]})

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            Table.from_columns(
                homes_schema(),
                {"city": ["A"], "price": [1], "bath": [1.0], "bogus": [0]},
            )

    def test_ragged_columns_raise(self):
        with pytest.raises(ValueError, match="ragged"):
            Table.from_columns(
                homes_schema(),
                {"city": ["A", "B"], "price": [1], "bath": [1.0]},
            )

    def test_coercion_error_names_column_and_position(self):
        with pytest.raises(TypeError, match=r"column 'price'\[1\]"):
            Table.from_columns(
                homes_schema(),
                {"city": ["A", "B"], "price": [1, "wat"], "bath": [1.0, 2.0]},
            )

    def test_empty_columns(self):
        t = Table.from_columns(
            homes_schema(), {"city": [], "price": [], "bath": []}
        )
        assert len(t) == 0


class TestFromRows:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_matches_insert_loop(self, backend):
        via_insert = Table(homes_schema(), backend=backend)
        via_insert.extend(ROWS)
        bulk = Table.from_rows(homes_schema(), ROWS, backend=backend)
        assert bulk.to_dicts() == via_insert.to_dicts()

    def test_accepts_generator(self):
        t = Table.from_rows(homes_schema(), (dict(r) for r in ROWS))
        assert len(t) == 5

    def test_missing_keys_become_null(self):
        t = Table.from_rows(homes_schema(), [{"city": "A"}])
        assert t.row(0)["price"] is None

    def test_unknown_keys_ignored(self):
        # Documented divergence from insert(): bulk loads project onto the
        # schema rather than erroring per-row.
        t = Table.from_rows(homes_schema(), [{"city": "A", "bogus": 1}])
        assert t.to_dicts() == [{"city": "A", "price": None, "bath": None}]


class TestPartitionDroppedRowsCounter:
    def test_counter_emitted_when_rows_dropped(self, table):
        perf.reset()
        perf.enable()
        try:
            parts = table.all_rows().partition_by_attribute(
                "price", lambda value: value
            )
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        assert None not in parts
        assert counters.get("partition.dropped_rows", 0) == 1

    def test_no_counter_when_nothing_dropped(self, table):
        perf.reset()
        perf.enable()
        try:
            # "bath" has one NULL -> counts 1
            table.all_rows().partition_by_attribute("bath", lambda v: v)
            fresh = Table(homes_schema(), backend=table.backend_name)
            fresh.extend([{"city": "A", "price": 1, "bath": 1.0}])
            fresh.all_rows().partition_by_attribute("price", lambda v: v)
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        assert counters.get("partition.dropped_rows", 0) == 1  # only the first


class TestPartitionByBuckets:
    """The numeric bucketing fast path (both backends)."""

    def test_buckets_match_semantics(self, table):
        # prices: 300, 500, 400, None, 250; boundaries [250, 400, 500]
        buckets = table.all_rows().partition_by_buckets("price", [250, 400, 500])
        assert buckets[0].indices == (0, 4)  # 250 <= v < 400
        assert buckets[1].indices == (1, 2)  # 400 <= v <= 500 (last closed)

    def test_out_of_range_and_null_dropped(self, table):
        perf.reset()
        perf.enable()
        try:
            buckets = table.all_rows().partition_by_buckets(
                "price", [300, 400, 450]
            )
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        assert buckets[0].indices == (0,)  # 300
        assert buckets[1].indices == (2,)  # 400; 450 excluded -> none
        # Dropped: 500 (above), None, 250 (below) = 3 rows.
        assert counters.get("partition.dropped_rows", 0) == 3

    def test_empty_buckets_omitted(self, table):
        buckets = table.all_rows().partition_by_buckets(
            "price", [0, 100, 200, 600]
        )
        assert sorted(buckets) == [2]
        assert len(buckets[2]) == 4

    def test_matches_classify_path(self, table):
        import bisect

        boundaries = [250, 350, 450, 500]

        def classify(value):
            if value is None or not (boundaries[0] <= value <= boundaries[-1]):
                return None
            return min(
                bisect.bisect_right(boundaries, value) - 1, len(boundaries) - 2
            )

        via_classify = table.all_rows().partition_by_attribute("price", classify)
        via_buckets = table.all_rows().partition_by_buckets("price", boundaries)
        assert set(via_classify) == set(via_buckets)
        for key in via_classify:
            assert via_classify[key].indices == via_buckets[key].indices

    def test_unknown_attribute_raises(self, table):
        with pytest.raises(KeyError):
            table.all_rows().partition_by_buckets("bogus", [0, 1])

    def test_float_column(self, table):
        buckets = table.all_rows().partition_by_buckets("bath", [1.0, 2.0, 2.5])
        assert buckets[0].indices == (0, 4)  # 1.5, 1.0
        assert buckets[1].indices == (1, 3)  # 2.5 (closed), 2.0


class TestRowSetIndices:
    def test_indices_is_tuple_from_list_input(self, table):
        from repro.relational.table import RowSet

        view = RowSet(table, [0, 2])
        assert view.indices == (0, 2)
        assert isinstance(view.indices, tuple)

    def test_indices_is_tuple_from_range_input(self, table):
        assert table.all_rows().indices == tuple(range(5))

    def test_select_results_expose_tuple_indices(self, table):
        rows = table.select(InPredicate("city", ["Seattle"]))
        assert rows.indices == (0, 2)
