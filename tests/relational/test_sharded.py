"""Sharded-backend mechanics: pool lifecycle, merges, fallbacks, planning.

The hypothesis suite (``test_backend_equivalence.py``) proves the sharded
backend *answers* like the single-process backends; this file tests the
machinery those answers ride on — worker-crash recovery, deterministic
merge order, seal invalidation on writes, resource release, the
non-ascending-candidates fallback, and the parent-side vectorization
planner staying in lockstep with the filter kernels.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import perf
from repro.relational.backends import ColumnStore, make_backend
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.schema import Attribute, TableSchema
from repro.relational.sharded import AscendingIndices, ShardedBackend
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType

from tests.relational.pool import shared_executor


def schema() -> TableSchema:
    return TableSchema(
        "Props",
        (
            Attribute("kind", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("count", DataType.INT, AttributeKind.NUMERIC),
            Attribute("score", DataType.FLOAT, AttributeKind.NUMERIC),
        ),
    )


def sample_rows(n: int = 600) -> list[dict]:
    return [
        {
            "kind": ("alpha", "beta", "gamma", None)[i % 4],
            "count": None if i % 11 == 0 else (i * 7) % 100 - 50,
            "score": None if i % 13 == 0 else float((i * 3) % 200) - 100.0,
        }
        for i in range(n)
    ]


def make_sharded(rows, **options) -> Table:
    options.setdefault("workers", 2)
    options.setdefault("min_parallel_rows", 0)
    options.setdefault("executor", shared_executor())
    return Table.from_rows(
        schema(), rows, backend="sharded", backend_options=options
    )


PREDICATE = Conjunction(
    [InPredicate("kind", ["alpha", "beta"]), RangePredicate("count", -30, 40)]
)


class TestPoolLifecycle:
    def test_worker_crash_recovers_with_correct_answer(self):
        rows = sample_rows()
        # A private pool — killing workers in the shared one would poison
        # every other test using it.
        table = make_sharded(rows, executor=None)
        col_table = Table.from_rows(schema(), rows, backend="columnar")
        expected = col_table.select(PREDICATE).indices
        try:
            backend: ShardedBackend = table._backend
            assert table.select(PREDICATE).indices == expected  # warm pool
            processes = backend._resources.executor._processes
            victim = next(iter(processes))
            os.kill(victim, signal.SIGKILL)
            # Give the kill a moment to land before the next dispatch.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and processes[victim].is_alive():
                time.sleep(0.01)
            perf.reset()
            perf.enable()
            try:
                assert table.select(PREDICATE).indices == expected
                restarted = perf.ACTIVE.counters.get("sharded.pool_restarts", 0)
            finally:
                perf.reset()
                perf.disable()
            # Either the batch hit the broken pool (restart + retry) or
            # the executor replaced the worker transparently; the answer
            # is exact either way, and a restart never goes unobserved.
            assert restarted in (0, 1)
            # The backend must still be parallel-capable after recovery.
            assert table.select(PREDICATE).indices == expected
        finally:
            table.close()

    def test_merge_is_deterministic_across_repeats(self):
        rows = sample_rows()
        table = make_sharded(rows, workers=4)
        col_table = Table.from_rows(schema(), rows, backend="columnar")
        try:
            expected = col_table.select(PREDICATE).indices
            for _ in range(5):
                assert table.select(PREDICATE).indices == expected
            boundaries = [-100.0, -25.0, 0.0, 25.0, 100.0]
            expected_buckets = {
                key: view.indices
                for key, view in col_table.all_rows()
                .partition_by_buckets("score", boundaries)
                .items()
            }
            for _ in range(5):
                buckets = {
                    key: view.indices
                    for key, view in table.all_rows()
                    .partition_by_buckets("score", boundaries)
                    .items()
                }
                assert buckets == expected_buckets
        finally:
            table.close()

    def test_results_are_marked_ascending_and_adopted_uncopied(self):
        table = make_sharded(sample_rows())
        try:
            view = table.select(PREDICATE)
            assert isinstance(view._indices, AscendingIndices)
            assert view.is_ascending
            # Chained selection feeds the marker type back in as
            # candidates — the backend trusts it without re-scanning.
            narrowed = view.select(RangePredicate("count", -10, 10))
            assert isinstance(narrowed._indices, AscendingIndices)
        finally:
            table.close()


class TestSealLifecycle:
    def test_writes_unseal_and_reads_reseal(self):
        rows = sample_rows()
        table = make_sharded(rows)
        backend: ShardedBackend = table._backend
        try:
            before = table.select(PREDICATE).indices
            assert backend.shard_count == 2
            table.insert({"kind": "alpha", "count": 0, "score": 1.0})
            assert backend.shard_count == 0  # write invalidated the seal
            after = table.select(PREDICATE).indices
            assert backend.shard_count == 2  # lazily resealed
            assert after == before + (len(rows),)
        finally:
            table.close()

    def test_close_releases_segments_and_stays_correct(self):
        rows = sample_rows()
        table = make_sharded(rows)
        backend: ShardedBackend = table._backend
        expected = table.select(PREDICATE).indices
        segments = [shm.name for shm in backend._resources.segments]
        assert segments
        table.close()
        table.close()  # idempotent
        assert backend._resources.segments == []
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")
        # Closed backends serve from the base store — still exact, and
        # never re-seal (no resurrected shared memory).
        assert table.select(PREDICATE).indices == expected
        assert backend.shard_count == 0

    def test_shard_count_never_exceeds_rows(self):
        table = make_sharded(sample_rows(3), workers=8)
        try:
            table.select(PREDICATE)
            assert table._backend.shard_count == 3
        finally:
            table.close()


class TestFallbacks:
    def test_non_ascending_candidates_fall_back_exactly(self):
        rows = sample_rows()
        table = make_sharded(rows)
        col_table = Table.from_rows(schema(), rows, backend="columnar")
        try:
            shuffled = [5, 3, 400, 17, 256, 1]
            predicate = RangePredicate("count", -30, 40)
            expected = col_table._backend.select_indices(predicate, shuffled)
            got = table._backend.select_indices(predicate, shuffled)
            assert got is not None and expected is not None
            assert list(got[0]) == list(expected[0])
            assert got[1] == expected[1]
        finally:
            table.close()

    def test_small_candidate_sets_stay_in_process(self):
        table = make_sharded(sample_rows(), min_parallel_rows=10_000)
        try:
            perf.reset()
            perf.enable()
            try:
                table.select(PREDICATE)
                parallel = sum(
                    value
                    for key, value in perf.ACTIVE.counters.items()
                    if key.startswith("sharded.parallel_ops")
                )
            finally:
                perf.reset()
                perf.disable()
            assert parallel == 0
            assert table._backend.shard_count == 0  # never even sealed
        finally:
            table.close()

    def test_invalid_options_raise(self):
        with pytest.raises(ValueError):
            make_backend("sharded", schema(), workers=0)
        with pytest.raises(ValueError):
            make_backend("sharded", schema(), min_parallel_rows=-1)
        with pytest.raises(TypeError):
            make_backend("columnar", schema(), workers=2)


class TestVectorizationPlanner:
    """can_vectorize must mirror _filter_one's None conditions exactly."""

    def probe_predicates(self):
        return [
            TruePredicate(),
            InPredicate("kind", ["alpha", None]),
            InPredicate("count", [1, 2]),
            InPredicate("missing", [1]),
            RangePredicate("count", 0, 10),
            RangePredicate("score", -5.0, 5.0),
            RangePredicate("kind", 0, 1),  # TEXT range: row path only
            RangePredicate("missing", 0, 1),
            ComparisonPredicate("count", ">=", 5),
            ComparisonPredicate("count", "=", "x"),  # = vs str: vectorizable
            ComparisonPredicate("count", "<", "x"),  # ordering vs str: not
            ComparisonPredicate("kind", "<", "beta"),
            ComparisonPredicate("kind", "<", 3),  # str dict vs int: TypeError
            ComparisonPredicate("missing", "=", 1),
            IsNullPredicate("kind"),
            IsNullPredicate("score"),
            IsNullPredicate("missing"),
        ]

    def test_planner_matches_kernels(self):
        store = ColumnStore(schema())
        for row in sample_rows(50):
            store.append_row([row["kind"], row["count"], row["score"]])
        indices = range(50)
        for predicate in self.probe_predicates():
            try:
                filtered = store._filter_one(predicate, indices)
            except TypeError:  # pragma: no cover - kernels never raise
                pytest.fail(f"kernel raised for {predicate!r}")
            assert store.can_vectorize(predicate) == (filtered is not None), (
                predicate
            )
