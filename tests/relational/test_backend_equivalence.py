"""Property-based equivalence: the columnar backend vs the row backend.

The ISSUE's acceptance bar for the storage redesign: for randomized tables
and predicates, the two backends must be *observationally identical* —
same rows selected (same indices, same order), same statistics, and the
same category tree out of the full categorizer.  Any divergence here means
the columnar fast paths changed semantics, not just speed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    RangePredicate,
)
from repro.relational.schema import Attribute, TableSchema
from repro.relational.statistics import (
    categorical_stats,
    numeric_stats,
    value_counts,
)
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType


def schema() -> TableSchema:
    return TableSchema(
        "Props",
        (
            Attribute("kind", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("flag", DataType.BOOL, AttributeKind.CATEGORICAL),
            Attribute("count", DataType.INT, AttributeKind.NUMERIC),
            Attribute("score", DataType.FLOAT, AttributeKind.NUMERIC),
        ),
    )


# Small value pools so duplicates, NULLs and empty selections all occur.
KINDS = ("alpha", "beta", "gamma", None)
# Bounded ints: the columnar backend packs into int64; arbitrary-precision
# ints are a documented row-backend-only feature, not an equivalence bug.
counts = st.one_of(st.none(), st.integers(min_value=-1_000, max_value=1_000))
scores = st.one_of(
    st.none(),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32),
)

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "kind": st.sampled_from(KINDS),
            "flag": st.one_of(st.none(), st.booleans()),
            "count": counts,
            "score": scores,
        }
    ),
    max_size=40,
)


def in_predicates(draw):
    attribute = draw(st.sampled_from(("kind", "count")))
    if attribute == "kind":
        values = draw(
            st.lists(st.sampled_from(KINDS + ("missing",)), min_size=1, max_size=3)
        )
    else:
        values = draw(
            st.lists(
                st.integers(min_value=-5, max_value=5), min_size=1, max_size=3
            )
        )
    return InPredicate(attribute, values)


def range_predicates(draw):
    attribute = draw(st.sampled_from(("count", "score")))
    low = draw(st.integers(min_value=-50, max_value=50))
    width = draw(st.integers(min_value=0, max_value=60))
    inclusive = draw(st.booleans())
    return RangePredicate(attribute, low, low + width, high_inclusive=inclusive)


def comparison_predicates(draw):
    attribute = draw(st.sampled_from(("kind", "count", "score")))
    op = draw(st.sampled_from(("<", "<=", ">", ">=", "=", "!=")))
    if attribute == "kind":
        value = draw(st.sampled_from(("alpha", "beta", "delta")))
    else:
        value = draw(st.integers(min_value=-20, max_value=20))
    return ComparisonPredicate(attribute, op, value)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(("in", "range", "cmp", "null", "and")))
    if kind == "in":
        return in_predicates(draw)
    if kind == "range":
        return range_predicates(draw)
    if kind == "cmp":
        return comparison_predicates(draw)
    if kind == "null":
        return IsNullPredicate(draw(st.sampled_from(("kind", "count", "score"))))
    parts = draw(
        st.lists(
            st.sampled_from(("in", "range", "cmp", "null")), min_size=2, max_size=4
        )
    )
    built = []
    for part in parts:
        if part == "in":
            built.append(in_predicates(draw))
        elif part == "range":
            built.append(range_predicates(draw))
        elif part == "cmp":
            built.append(comparison_predicates(draw))
        else:
            built.append(
                IsNullPredicate(draw(st.sampled_from(("kind", "count", "score"))))
            )
    return Conjunction(built)


def both_backends(rows):
    return (
        Table.from_rows(schema(), rows, backend="rows"),
        Table.from_rows(schema(), rows, backend="columnar"),
    )


class TestStorageEquivalence:
    @given(rows_strategy)
    def test_logical_contents_identical(self, rows):
        row_table, col_table = both_backends(rows)
        assert row_table.to_dicts() == col_table.to_dicts()
        for name in schema().names():
            assert list(row_table.column(name)) == list(col_table.column(name))

    @given(rows_strategy, predicates())
    def test_selection_identical(self, rows, predicate):
        row_table, col_table = both_backends(rows)
        assert (
            row_table.select(predicate).indices
            == col_table.select(predicate).indices
        )

    @given(rows_strategy, predicates(), predicates())
    def test_chained_selection_identical(self, rows, first, second):
        row_table, col_table = both_backends(rows)
        row_view = row_table.select(first).select(second)
        col_view = col_table.select(first).select(second)
        assert row_view.indices == col_view.indices

    @given(rows_strategy)
    def test_groupby_identical(self, rows):
        row_table, col_table = both_backends(rows)
        for name in ("kind", "flag", "count"):
            assert row_table.groupby_index(name) == col_table.groupby_index(name)

    @given(
        rows_strategy,
        st.lists(
            st.integers(min_value=-60, max_value=60),
            min_size=2,
            max_size=6,
            unique=True,
        ).map(sorted),
    )
    def test_partition_by_buckets_identical(self, rows, boundaries):
        row_table, col_table = both_backends(rows)
        for attribute in ("count", "score"):
            row_buckets = row_table.all_rows().partition_by_buckets(
                attribute, boundaries
            )
            col_buckets = col_table.all_rows().partition_by_buckets(
                attribute, boundaries
            )
            assert set(row_buckets) == set(col_buckets)
            for key in row_buckets:
                assert row_buckets[key].indices == col_buckets[key].indices

    @given(rows_strategy)
    def test_statistics_identical(self, rows):
        row_table, col_table = both_backends(rows)
        assert numeric_stats(row_table, "count") == numeric_stats(col_table, "count")
        assert numeric_stats(row_table, "score") == numeric_stats(col_table, "score")
        assert categorical_stats(row_table, "kind") == categorical_stats(
            col_table, "kind"
        )
        assert value_counts(row_table, "kind") == value_counts(col_table, "kind")


class TestCategorizerEquivalence:
    """End-to-end: the full cost-based tree must not depend on the backend."""

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_category_trees_identical(self, statistics, seattle_query, seed):
        # Random-but-deterministic tables via the real generator; the
        # workload statistics are backend-independent by construction, so
        # the tree compare isolates the storage layer.
        from repro.core.algorithm import CostBasedCategorizer
        from repro.data.homes import generate_homes

        trees = []
        for backend in ("rows", "columnar"):
            table = generate_homes(rows=600, seed=seed, backend=backend)
            rows = seattle_query.execute(table)
            tree = CostBasedCategorizer(statistics).categorize(rows, seattle_query)
            trees.append(
                [
                    (node.display(), node.level, tuple(node.rows.indices))
                    for node in tree.nodes()
                ]
            )
        assert trees[0] == trees[1]
