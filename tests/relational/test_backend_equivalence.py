"""Property-based equivalence: columnar and sharded backends vs the row backend.

The ISSUE's acceptance bar for the storage redesign: for randomized tables
and predicates, all backends must be *observationally identical* — same
rows selected (same indices, same order), same statistics, and the same
category tree out of the full categorizer.  Any divergence here means a
fast path changed semantics, not just speed.

The sharded backend runs with ``min_parallel_rows=0`` so even these tiny
tables go through the shared-memory shards and the worker pool — the
whole split/dispatch/merge machinery is exercised on every example, with
one module-shared fork pool so examples don't pay pool startup.

Non-finite floats (NaN / ±inf) are included in the strategies for the
selection and bucketing tests — the NaN-divergence bugfix's regression
surface — but not for the contents/statistics tests: NaN breaks ``==``
by design, so observational identity is asserted where observations are
row *indices*, not raw float values.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    RangePredicate,
)
from repro.relational.schema import Attribute, TableSchema
from repro.relational.statistics import (
    categorical_stats,
    numeric_stats,
    value_counts,
)
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType

from tests.relational.pool import shared_executor

#: Backends under test; "rows" is the semantics oracle.
ALL_BACKENDS = ("rows", "columnar", "sharded")


def sharded_options() -> dict:
    """Sharded-backend options forcing the parallel path on tiny tables."""
    return {
        "workers": 2,
        "min_parallel_rows": 0,
        "executor": shared_executor(),
    }


def schema() -> TableSchema:
    return TableSchema(
        "Props",
        (
            Attribute("kind", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("flag", DataType.BOOL, AttributeKind.CATEGORICAL),
            Attribute("count", DataType.INT, AttributeKind.NUMERIC),
            Attribute("score", DataType.FLOAT, AttributeKind.NUMERIC),
        ),
    )


# Small value pools so duplicates, NULLs and empty selections all occur.
KINDS = ("alpha", "beta", "gamma", None)
# Bounded ints: the columnar backend packs into int64; arbitrary-precision
# ints are a documented row-backend-only feature, not an equivalence bug.
counts = st.one_of(st.none(), st.integers(min_value=-1_000, max_value=1_000))
scores = st.one_of(
    st.none(),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32),
)
# Scores that also cover the drop-and-count contract's edge cases.
nonfinite_scores = st.one_of(
    scores,
    st.sampled_from((math.nan, math.inf, -math.inf)),
)


def rows_strategy_with(score_values):
    return st.lists(
        st.fixed_dictionaries(
            {
                "kind": st.sampled_from(KINDS),
                "flag": st.one_of(st.none(), st.booleans()),
                "count": counts,
                "score": score_values,
            }
        ),
        max_size=40,
    )


rows_strategy = rows_strategy_with(scores)
rows_with_nonfinite = rows_strategy_with(nonfinite_scores)


def in_predicates(draw):
    attribute = draw(st.sampled_from(("kind", "count")))
    if attribute == "kind":
        values = draw(
            st.lists(st.sampled_from(KINDS + ("missing",)), min_size=1, max_size=3)
        )
    else:
        values = draw(
            st.lists(
                st.integers(min_value=-5, max_value=5), min_size=1, max_size=3
            )
        )
    return InPredicate(attribute, values)


def range_predicates(draw):
    attribute = draw(st.sampled_from(("count", "score")))
    low = draw(st.integers(min_value=-50, max_value=50))
    width = draw(st.integers(min_value=0, max_value=60))
    inclusive = draw(st.booleans())
    return RangePredicate(attribute, low, low + width, high_inclusive=inclusive)


def comparison_predicates(draw):
    attribute = draw(st.sampled_from(("kind", "count", "score")))
    op = draw(st.sampled_from(("<", "<=", ">", ">=", "=", "!=")))
    if attribute == "kind":
        value = draw(st.sampled_from(("alpha", "beta", "delta")))
    else:
        value = draw(st.integers(min_value=-20, max_value=20))
    return ComparisonPredicate(attribute, op, value)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(("in", "range", "cmp", "null", "and")))
    if kind == "in":
        return in_predicates(draw)
    if kind == "range":
        return range_predicates(draw)
    if kind == "cmp":
        return comparison_predicates(draw)
    if kind == "null":
        return IsNullPredicate(draw(st.sampled_from(("kind", "count", "score"))))
    parts = draw(
        st.lists(
            st.sampled_from(("in", "range", "cmp", "null")), min_size=2, max_size=4
        )
    )
    built = []
    for part in parts:
        if part == "in":
            built.append(in_predicates(draw))
        elif part == "range":
            built.append(range_predicates(draw))
        elif part == "cmp":
            built.append(comparison_predicates(draw))
        else:
            built.append(
                IsNullPredicate(draw(st.sampled_from(("kind", "count", "score"))))
            )
    return Conjunction(built)


def make_table(rows, backend):
    options = sharded_options() if backend == "sharded" else None
    return Table.from_rows(
        schema(), rows, backend=backend, backend_options=options
    )


def all_backends(rows):
    return tuple(make_table(rows, backend) for backend in ALL_BACKENDS)


def both_backends(rows):
    return (make_table(rows, "rows"), make_table(rows, "columnar"))


class TestStorageEquivalence:
    @given(rows_strategy)
    def test_logical_contents_identical(self, rows):
        row_table, col_table = both_backends(rows)
        assert row_table.to_dicts() == col_table.to_dicts()
        for name in schema().names():
            assert list(row_table.column(name)) == list(col_table.column(name))

    @settings(deadline=None)
    @given(rows_with_nonfinite, predicates())
    def test_selection_identical(self, rows, predicate):
        row_table, *others = all_backends(rows)
        expected = _selection(row_table, predicate)
        for table in others:
            assert _selection(table, predicate) == expected, table.backend_name

    @settings(deadline=None)
    @given(rows_with_nonfinite, predicates(), predicates())
    def test_chained_selection_identical(self, rows, first, second):
        row_table, *others = all_backends(rows)
        expected = _selection(row_table, first, second)
        for table in others:
            assert _selection(table, first, second) == expected, (
                table.backend_name
            )

    @settings(deadline=None)
    @given(rows_with_nonfinite)
    def test_groupby_identical(self, rows):
        row_table, *others = all_backends(rows)
        for name in ("kind", "flag", "count"):
            expected = row_table.groupby_index(name)
            for table in others:
                assert table.groupby_index(name) == expected, table.backend_name

    @settings(deadline=None)
    @given(
        rows_with_nonfinite,
        st.lists(
            st.integers(min_value=-60, max_value=60),
            min_size=2,
            max_size=6,
            unique=True,
        ).map(sorted),
    )
    def test_partition_by_buckets_identical(self, rows, boundaries):
        row_table, *others = all_backends(rows)
        for attribute in ("count", "score"):
            expected = _buckets(row_table, attribute, boundaries)
            for table in others:
                assert _buckets(table, attribute, boundaries) == expected, (
                    table.backend_name
                )

    @settings(deadline=None)
    @given(rows_with_nonfinite)
    def test_nonfinite_boundaries_identical(self, rows):
        # Non-finite boundaries take the guarded slow path in every
        # backend; the drop-and-count contract must not change.
        boundaries = (-math.inf, -10.0, 0.0, 10.0, math.inf)
        row_table, *others = all_backends(rows)
        expected = _buckets(row_table, "score", boundaries)
        expected_dropped = len(rows) - sum(
            len(ids) for ids in expected.values()
        )
        for table in others:
            buckets = _buckets(table, "score", boundaries)
            assert buckets == expected, table.backend_name
            dropped = len(rows) - sum(len(ids) for ids in buckets.values())
            assert dropped == expected_dropped, table.backend_name

    @given(rows_strategy)
    def test_statistics_identical(self, rows):
        row_table, col_table = both_backends(rows)
        assert numeric_stats(row_table, "count") == numeric_stats(col_table, "count")
        assert numeric_stats(row_table, "score") == numeric_stats(col_table, "score")
        assert categorical_stats(row_table, "kind") == categorical_stats(
            col_table, "kind"
        )
        assert value_counts(row_table, "kind") == value_counts(col_table, "kind")


def _selection(table, *predicate_chain):
    """Selection indices, with TypeErrors (TEXT-range rows) folded in."""
    view = table.all_rows()
    try:
        for predicate in predicate_chain:
            view = view.select(predicate)
    except TypeError:
        return "TypeError"
    return view.indices


def _buckets(table, attribute, boundaries):
    partitions = table.all_rows().partition_by_buckets(attribute, boundaries)
    return {key: view.indices for key, view in partitions.items()}


class TestCategorizerEquivalence:
    """End-to-end: the full cost-based tree must not depend on the backend."""

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_category_trees_identical(self, statistics, seattle_query, seed):
        # Random-but-deterministic tables via the real generator; the
        # workload statistics are backend-independent by construction, so
        # the tree compare isolates the storage layer.  The sharded table
        # parallelizes the big root-level selections (min_parallel_rows
        # below the table size) while node-level work stays in-process.
        from repro.core.algorithm import CostBasedCategorizer
        from repro.data.homes import generate_homes

        trees = []
        for backend in ALL_BACKENDS:
            options = None
            if backend == "sharded":
                options = {
                    "workers": 2,
                    "min_parallel_rows": 64,
                    "executor": shared_executor(),
                }
            table = generate_homes(
                rows=600, seed=seed, backend=backend, backend_options=options
            )
            rows = seattle_query.execute(table)
            tree = CostBasedCategorizer(statistics).categorize(rows, seattle_query)
            trees.append(
                [
                    (node.display(), node.level, tuple(node.rows.indices))
                    for node in tree.nodes()
                ]
            )
        assert trees[0] == trees[1] == trees[2]
