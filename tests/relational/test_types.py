"""Tests for the relational type system."""

import pytest

from repro.relational.types import AttributeKind, DataType


class TestDataTypeCoercion:
    def test_int_accepts_int(self):
        assert DataType.INT.coerce(42) == 42

    def test_int_accepts_integral_float(self):
        assert DataType.INT.coerce(42.0) == 42

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeError, match="non-integral"):
            DataType.INT.coerce(42.5)

    def test_int_parses_string(self):
        assert DataType.INT.coerce("250000") == 250_000

    def test_int_rejects_garbage_string(self):
        with pytest.raises(TypeError, match="cannot parse"):
            DataType.INT.coerce("many")

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            DataType.INT.coerce(True)

    def test_float_accepts_int(self):
        value = DataType.FLOAT.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_parses_string(self):
        assert DataType.FLOAT.coerce("2.5") == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(TypeError):
            DataType.FLOAT.coerce(False)

    def test_text_accepts_string(self):
        assert DataType.TEXT.coerce("Seattle") == "Seattle"

    def test_text_stringifies_numbers(self):
        assert DataType.TEXT.coerce(42) == "42"

    def test_text_rejects_objects(self):
        with pytest.raises(TypeError):
            DataType.TEXT.coerce(object())

    @pytest.mark.parametrize(
        "raw,expected",
        [("true", True), ("FALSE", False), ("1", True), ("no", False), (1, True)],
    )
    def test_bool_parsing(self, raw, expected):
        assert DataType.BOOL.coerce(raw) is expected

    def test_bool_rejects_unknown_string(self):
        with pytest.raises(TypeError):
            DataType.BOOL.coerce("maybe")

    def test_bool_rejects_out_of_range_int(self):
        with pytest.raises(TypeError):
            DataType.BOOL.coerce(2)

    @pytest.mark.parametrize("data_type", list(DataType))
    def test_none_passes_through(self, data_type):
        assert data_type.coerce(None) is None


class TestDataTypeProperties:
    def test_numeric_types(self):
        assert DataType.INT.is_numeric()
        assert DataType.FLOAT.is_numeric()
        assert not DataType.TEXT.is_numeric()
        assert not DataType.BOOL.is_numeric()

    def test_python_types(self):
        assert DataType.INT.python_type is int
        assert DataType.TEXT.python_type is str


class TestAttributeKind:
    def test_two_kinds_exist(self):
        assert {k.value for k in AttributeKind} == {"categorical", "numeric"}
