"""Tests for attribute and table-schema definitions."""

import pytest

from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import AttributeKind, DataType


def make_schema() -> TableSchema:
    return TableSchema(
        "Homes",
        (
            Attribute("city", DataType.TEXT),
            Attribute("price", DataType.INT),
            Attribute("zipcode", DataType.INT, AttributeKind.CATEGORICAL),
        ),
    )


class TestAttribute:
    def test_kind_defaults_numeric_for_numbers(self):
        assert Attribute("price", DataType.INT).kind is AttributeKind.NUMERIC

    def test_kind_defaults_categorical_for_text(self):
        assert Attribute("city", DataType.TEXT).kind is AttributeKind.CATEGORICAL

    def test_kind_override_survives(self):
        attr = Attribute("zipcode", DataType.INT, AttributeKind.CATEGORICAL)
        assert attr.is_categorical and not attr.is_numeric

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid attribute name"):
            Attribute("bad name", DataType.TEXT)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("", DataType.TEXT)

    def test_non_nullable_rejects_none(self):
        attr = Attribute("price", DataType.INT, nullable=False)
        with pytest.raises(ValueError, match="not nullable"):
            attr.coerce(None)

    def test_nullable_accepts_none(self):
        assert Attribute("price", DataType.INT).coerce(None) is None

    def test_coerce_delegates_to_type(self):
        assert Attribute("price", DataType.INT).coerce("5000") == 5000


class TestTableSchema:
    def test_len_and_iteration(self):
        schema = make_schema()
        assert len(schema) == 3
        assert [a.name for a in schema] == ["city", "price", "zipcode"]

    def test_contains(self):
        schema = make_schema()
        assert "price" in schema
        assert "bogus" not in schema

    def test_attribute_lookup(self):
        assert make_schema().attribute("price").data_type is DataType.INT

    def test_attribute_lookup_error_lists_names(self):
        with pytest.raises(KeyError, match="available"):
            make_schema().attribute("bogus")

    def test_index_of(self):
        assert make_schema().index_of("price") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema(
                "T",
                (Attribute("a", DataType.INT), Attribute("a", DataType.TEXT)),
            )

    def test_project_keeps_order_given(self):
        projected = make_schema().project(["price", "city"])
        assert projected.names() == ("price", "city")

    def test_project_unknown_raises(self):
        with pytest.raises(KeyError):
            make_schema().project(["nope"])

    def test_kind_partitions(self):
        schema = make_schema()
        assert {a.name for a in schema.categorical_attributes()} == {"city", "zipcode"}
        assert {a.name for a in schema.numeric_attributes()} == {"price"}
