"""Deprecation guard: the legacy two-arg service constructor must not spread.

``CategorizationService(table, statistics)`` still works — the shim wraps
the pair in an ad-hoc :class:`~repro.serving.relation.Relation` and emits
a ``DeprecationWarning`` — but no code in this repository may keep using
it: new call sites pass a ``Relation``.  An AST scan enforces that, so
the deprecation actually converges instead of accreting exceptions.
"""

from __future__ import annotations

import ast
import warnings
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SCAN_ROOTS = ("src", "tests", "benchmarks")

#: Files allowed to make legacy calls — only the ones whose *job* is to
#: exercise the shim.
ALLOWED = {
    Path("tests/test_deprecation_lint.py"),
}


def _legacy_calls(path: Path) -> list[int]:
    """Line numbers of legacy ``CategorizationService(table, stats)`` calls.

    Legacy means: two or more positional arguments, or a ``statistics=``
    keyword — both only exist on the deprecated signature.  The
    Relation-first form passes one positional (or ``relation=``).
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    lines = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "CategorizationService":
            continue
        positional = [arg for arg in node.args if not isinstance(arg, ast.Starred)]
        keywords = {kw.arg for kw in node.keywords}
        if len(positional) >= 2 or "statistics" in keywords:
            lines.append(node.lineno)
    return lines


def test_no_new_legacy_constructor_calls():
    offenders = []
    for root in SCAN_ROOTS:
        for path in sorted((REPO_ROOT / root).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT)
            if relative in ALLOWED:
                continue
            offenders.extend(f"{relative}:{line}" for line in _legacy_calls(path))
    assert not offenders, (
        "legacy CategorizationService(table, statistics) calls found — "
        "pass a repro.serving.relation.Relation instead (docs/catalog.md): "
        + ", ".join(offenders)
    )


class TestShim:
    """The legacy form keeps working, loudly."""

    def test_legacy_call_warns_and_serves(self, homes_table, statistics):
        from repro.serving.service import CategorizationService

        with pytest.warns(DeprecationWarning, match="Relation"):
            service = CategorizationService(homes_table, statistics.copy())
        assert service.name == "ListProperty"
        assert service.namespace == "ListProperty"
        result = service.categorize(
            "SELECT * FROM ListProperty WHERE price <= 300000"
        )
        assert len(result.rows) > 0

    def test_statistics_keyword_warns_too(self, homes_table, statistics):
        from repro.serving.service import CategorizationService

        with pytest.warns(DeprecationWarning):
            CategorizationService(homes_table, statistics=statistics.copy())

    def test_relation_form_is_silent(self, homes_table, statistics):
        from repro.serving.relation import Relation
        from repro.serving.service import CategorizationService

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CategorizationService(Relation(homes_table, statistics.copy()))
