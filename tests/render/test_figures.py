"""Tests for ASCII chart rendering."""

import math

import pytest

from repro.render.figures import bar_chart, scatter_plot


class TestScatter:
    def test_dimensions(self):
        text = scatter_plot([1, 2, 3], [1, 2, 3], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 3  # header + rows + axis + label
        assert all(len(line) <= 21 for line in lines[1:6])

    def test_points_present(self):
        text = scatter_plot([0.0, 10.0], [0.0, 10.0], width=10, height=5)
        assert "." in text

    def test_density_glyphs(self):
        xs = [5.0] * 10
        ys = [5.0] * 10
        text = scatter_plot(xs, ys, width=10, height=5)
        assert "@" in text

    def test_axis_labels(self):
        text = scatter_plot([1], [2], x_label="estimated", y_label="actual")
        assert "estimated" in text and "actual" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot([1], [1, 2])

    def test_diagonal_orientation(self):
        # y grows upward: the max-y point must appear on an earlier line
        # than the min-y point.
        text = scatter_plot([0.0, 10.0], [0.0, 10.0], width=11, height=5)
        lines = text.splitlines()[1:6]
        top = next(i for i, l in enumerate(lines) if "." in l)
        bottom = max(i for i, l in enumerate(lines) if "." in l)
        assert lines[top].rstrip().endswith(".")  # high y, high x -> top right
        assert lines[bottom].startswith("|.")  # low y, low x -> bottom left


class TestBarChart:
    def test_groups_and_bars(self):
        text = bar_chart(
            {"cost-based": [1.0, 2.0], "no-cost": [4.0, 8.0]},
            ["Task 1", "Task 2"],
            width=8,
        )
        lines = text.splitlines()
        assert lines[0] == "Task 1:"
        assert sum(1 for l in lines if "#" in l) == 4

    def test_bar_lengths_proportional(self):
        text = bar_chart({"a": [2.0], "b": [8.0]}, ["x"], width=8)
        lines = [l for l in text.splitlines() if "#" in l]
        assert lines[0].count("#") * 3 <= lines[1].count("#")

    def test_nan_renders_dash(self):
        text = bar_chart({"a": [math.nan]}, ["x"])
        assert "-" in text
        assert "#" not in text

    def test_zero_value(self):
        text = bar_chart({"a": [0.0]}, ["x"])
        assert "0.0" in text

    def test_custom_format(self):
        text = bar_chart({"a": [0.5]}, ["x"], value_format="{:.0%}")
        assert "50%" in text
