"""Tests for the ASCII treeview renderer."""

import pytest

from repro.core.labels import CategoricalLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.render.treeview import render_tree, summarize_tree


@pytest.fixture
def tree():
    schema = TableSchema("T", (Attribute("city", DataType.TEXT),))
    table = Table(schema)
    for city in ("a", "a", "b"):
        table.insert({"city": city})
    root = CategoryNode(table.all_rows())
    parts = table.all_rows().partition_by(lambda r: r["city"])
    root.add_children(
        "city",
        [
            (CategoricalLabel("city", ("a",)), parts["a"]),
            (CategoricalLabel("city", ("b",)), parts["b"]),
        ],
    )
    return CategoryTree(root, technique="test")


class TestRender:
    def test_shows_root_and_counts(self, tree):
        text = render_tree(tree)
        assert "ALL [3]" in text
        assert "city: a [2]" in text
        assert "city: b [1]" in text

    def test_last_child_uses_corner_connector(self, tree):
        lines = render_tree(tree).splitlines()
        assert lines[-1].startswith("`-- ")

    def test_max_children_elides(self, tree):
        text = render_tree(tree, max_children=1)
        assert "(1 more)" in text

    def test_max_depth_elides(self, tree):
        text = render_tree(tree, max_depth=0)
        assert "2 subcategories" in text
        assert "city: a" not in text

    def test_cost_annotations(self, tree):
        from repro.core.config import PAPER_CONFIG
        from repro.core.cost import CostModel

        class Uniform:
            def showtuples_probability(self, node):
                return 1.0 if node.is_leaf else 0.5

            def showtuples_probability_for(self, attribute):
                return 0.5

            def exploration_probability(self, node):
                return 1.0 if node.label is None else 0.5

        model = CostModel(Uniform(), PAPER_CONFIG)
        text = render_tree(tree, cost_model=model)
        assert "P=" in text and "CostAll=" in text


class TestSummarize:
    def test_summary_fields(self, tree):
        summary = summarize_tree(tree)
        assert "technique=test" in summary
        assert "result_size=3" in summary
        assert "level_attributes=['city']" in summary
        assert "max_leaf=2" in summary
