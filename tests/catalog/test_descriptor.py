"""DatasetDescriptor: validation, CLI-flag parsing, TOML catalog files."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.catalog import (
    BUILTIN_SCHEMAS,
    GENERATORS,
    DatasetDescriptor,
    load_catalog_file,
    parse_dataset_arg,
)


class TestDescriptorValidation:
    def test_needs_exactly_one_of_source_or_generator(self):
        with pytest.raises(ValueError, match="exactly one"):
            DatasetDescriptor(name="X")
        with pytest.raises(ValueError, match="exactly one"):
            DatasetDescriptor(
                name="X",
                source=Path("x.csv"),
                generator="homes",
                workload=Path("w.sql"),
            )

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            DatasetDescriptor(name="X", generator="nope")

    def test_csv_dataset_needs_workload(self):
        with pytest.raises(ValueError, match="workload="):
            DatasetDescriptor(name="ListProperty", source=Path("x.csv"))

    def test_workers_only_for_sharded(self):
        with pytest.raises(ValueError, match="sharded"):
            DatasetDescriptor(name="Movies", generator="movies", workers=4)

    def test_namespace_defaults_to_name(self):
        descriptor = DatasetDescriptor(name="Movies", generator="movies")
        assert descriptor.namespace == "Movies"
        aliased = DatasetDescriptor(
            name="Movies", generator="movies", namespace="films"
        )
        assert aliased.namespace == "films"

    def test_schema_resolution_prefers_builtin_by_name(self):
        descriptor = DatasetDescriptor(name="Movies", generator="movies")
        assert descriptor.load_schema().name == "Movies"
        assert set(BUILTIN_SCHEMAS) >= {"ListProperty", "Movies"}

    def test_name_must_match_schema(self, tmp_path):
        data = tmp_path / "homes.csv"
        data.write_text("", encoding="utf-8")
        descriptor = DatasetDescriptor(
            name="NotTheSchema", source=data, workload=tmp_path / "w.sql"
        )
        with pytest.raises(ValueError, match="no built-in schema"):
            descriptor.load_schema()

    def test_generated_build_is_deterministic(self):
        descriptor = DatasetDescriptor(
            name="Movies", generator="movies", rows=200, workload_queries=50
        )
        table_a, stats_a = descriptor.build()
        table_b, stats_b = descriptor.build()
        assert len(table_a) == len(table_b) == 200
        assert stats_a.total_queries == stats_b.total_queries == 50

    def test_every_generator_builds(self):
        for key in GENERATORS:
            name = GENERATORS[key].schema().name
            descriptor = DatasetDescriptor(
                name=name, generator=key, rows=50, workload_queries=20
            )
            table, statistics = descriptor.build()
            assert len(table) == 50
            assert statistics.total_queries == 20


class TestParseDatasetArg:
    def test_csv_spec(self):
        descriptor = parse_dataset_arg(
            "ListProperty=homes.csv,workload=workload.sql,backend=columnar"
        )
        assert descriptor.name == "ListProperty"
        assert descriptor.source == Path("homes.csv")
        assert descriptor.workload == Path("workload.sql")
        assert descriptor.backend == "columnar"

    def test_generator_spec(self):
        descriptor = parse_dataset_arg("Movies=@movies,rows=8000,seed=3")
        assert descriptor.generator == "movies"
        assert descriptor.rows == 8000
        assert descriptor.seed == 3

    @pytest.mark.parametrize(
        "bad",
        ["Movies", "=x.csv", "Movies=", "Movies=@movies,rows", "M=@movies,rows=1,rows=2"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_dataset_arg(bad)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_dataset_arg("Movies=@movies,color=red")


class TestCatalogFile:
    def _write(self, tmp_path, text):
        path = tmp_path / "catalog.toml"
        path.write_text(text, encoding="utf-8")
        return path

    def test_loads_descriptors_and_default(self, tmp_path):
        (tmp_path / "homes.csv").write_text("", encoding="utf-8")
        (tmp_path / "workload.sql").write_text("", encoding="utf-8")
        path = self._write(
            tmp_path,
            """
            default = "Movies"

            [datasets.ListProperty]
            source = "homes.csv"
            workload = "workload.sql"

            [datasets.Movies]
            generator = "movies"
            rows = 500
            """,
        )
        descriptors, default = load_catalog_file(path)
        assert [d.name for d in descriptors] == ["ListProperty", "Movies"]
        assert default == "Movies"
        # Relative paths resolve against the TOML file's directory.
        (homes,) = [d for d in descriptors if d.name == "ListProperty"]
        assert homes.source == tmp_path / "homes.csv"
        assert homes.workload == tmp_path / "workload.sql"

    def test_default_must_name_a_dataset(self, tmp_path):
        path = self._write(
            tmp_path,
            """
            default = "Nope"

            [datasets.Movies]
            generator = "movies"
            """,
        )
        with pytest.raises(ValueError, match="Nope"):
            load_catalog_file(path)

    def test_empty_catalog_rejected(self, tmp_path):
        path = self._write(tmp_path, 'title = "no datasets"\n')
        with pytest.raises(ValueError, match="datasets"):
            load_catalog_file(path)
