"""Catalog resolution and the cross-relation isolation contract.

The whole point of the catalog is that relations share *nothing* but the
process and the trace-id sequence: recording into one table must never
move another's epoch, cache keys must never collide across namespaces,
and each relation's journal must replay only its own queries.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import Catalog, DatasetDescriptor, open_catalog
from repro.serving.errors import UnknownTable
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService

HOMES_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"
HOMES_LOG = "SELECT * FROM ListProperty WHERE bedroomcount = 3"
MOVIES_SQL = "SELECT * FROM Movies WHERE year >= 2000"
MOVIES_LOG = "SELECT * FROM Movies WHERE rating >= 7.0"


@pytest.fixture
def movies_relation():
    descriptor = DatasetDescriptor(
        name="Movies", generator="movies", rows=300, workload_queries=100
    )
    table, statistics = descriptor.build()
    return Relation(table, statistics)


@pytest.fixture
def catalog(homes_table, statistics, movies_relation):
    homes = CategorizationService(
        Relation(homes_table, statistics.copy()), batch_size=2
    )
    movies = CategorizationService(movies_relation, batch_size=2)
    return Catalog.of(homes, movies)


class TestResolution:
    def test_names_and_membership(self, catalog):
        assert catalog.names() == ("ListProperty", "Movies")
        assert "Movies" in catalog
        assert "Nope" not in catalog
        assert len(catalog) == 2

    def test_first_added_is_default(self, catalog):
        assert catalog.default_name == "ListProperty"
        assert catalog.default is catalog.get("ListProperty")

    def test_explicit_default_wins(self, homes_table, statistics, movies_relation):
        catalog = Catalog.of(
            CategorizationService(Relation(homes_table, statistics.copy())),
            CategorizationService(movies_relation),
            default="Movies",
        )
        assert catalog.default_name == "Movies"

    def test_resolve_flags_the_defaulted_path(self, catalog):
        service, defaulted = catalog.resolve(None)
        assert service.name == "ListProperty" and defaulted
        service, defaulted = catalog.resolve("Movies")
        assert service.name == "Movies" and not defaulted

    def test_unknown_table_raises_with_available(self, catalog):
        with pytest.raises(UnknownTable) as excinfo:
            catalog.resolve("Nope")
        assert excinfo.value.code == "UnknownTable"
        assert excinfo.value.detail()["available"] == ["ListProperty", "Movies"]

    def test_duplicate_name_rejected(self, catalog, homes_table, statistics):
        with pytest.raises(ValueError, match="already holds"):
            catalog.add(
                CategorizationService(Relation(homes_table, statistics.copy()))
            )

    def test_empty_catalog_has_no_default(self):
        with pytest.raises(ValueError, match="empty catalog"):
            Catalog().default_name

    def test_trace_ids_unique_across_threads(self, catalog):
        seen: list[str] = []
        lock = threading.Lock()

        def mint():
            ids = [catalog.new_trace_id() for _ in range(50)]
            with lock:
                seen.extend(ids)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == len(set(seen)) == 400
        assert all(trace_id.startswith("req-") for trace_id in seen)


class TestIsolation:
    def test_recording_into_one_never_moves_the_other_epoch(self, catalog):
        homes, movies = catalog.get("ListProperty"), catalog.get("Movies")
        for _ in range(2):
            homes.record_query(HOMES_LOG)
            homes.record_query(HOMES_SQL)
        assert homes.epoch_number == 2
        assert movies.epoch_number == 0
        movies.record_query(MOVIES_LOG)
        movies.record_query(MOVIES_SQL)
        assert movies.epoch_number == 1
        assert homes.epoch_number == 2

    def test_cache_key_namespaces_are_disjoint(self, catalog):
        homes, movies = catalog.get("ListProperty"), catalog.get("Movies")
        homes.categorize(HOMES_SQL)
        movies.categorize(MOVIES_SQL)
        homes_keys = set(homes.cache._entries)
        movies_keys = set(movies.cache._entries)
        assert homes_keys and movies_keys
        assert not homes_keys & movies_keys
        assert all(key.split(":", 4)[0] == "ListProperty" for key in homes_keys)
        assert all(key.split(":", 4)[0] == "Movies" for key in movies_keys)

    def test_concurrent_recording_conserves_per_table(self, catalog):
        homes, movies = catalog.get("ListProperty"), catalog.get("Movies")

        def pump(service, sql, count):
            for _ in range(count):
                service.record_query(sql)

        threads = [
            threading.Thread(target=pump, args=(homes, HOMES_LOG, 30)),
            threading.Thread(target=pump, args=(movies, MOVIES_LOG, 20)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        homes_health, movies_health = homes.health(), movies.health()
        assert homes_health["recorded"] == 30
        assert movies_health["recorded"] == 20
        for health in (homes_health, movies_health):
            assert (
                health["published"] + health["pending"] + health["spilled"]
                == health["recorded"]
            )

    def test_aggregate_health_lists_every_table(self, catalog):
        health = catalog.health()
        assert health["default_table"] == "ListProperty"
        assert set(health["tables"]) == {"ListProperty", "Movies"}
        for name, table_health in health["tables"].items():
            assert table_health["table"] == name


class TestPerRelationDurability:
    DESCRIPTORS = (
        DatasetDescriptor(
            name="ListProperty", generator="homes", rows=200, workload_queries=50
        ),
        DatasetDescriptor(
            name="Movies", generator="movies", rows=200, workload_queries=50
        ),
    )

    def test_each_journal_replays_only_its_own_queries(self, tmp_path):
        catalog = open_catalog(
            self.DESCRIPTORS,
            state_root=tmp_path,
            service_options={"batch_size": 4},
        )
        try:
            homes = catalog.get("ListProperty")
            for sql in (HOMES_LOG, HOMES_SQL, HOMES_LOG):
                homes.record_query(sql)
        finally:
            catalog.close()  # no persist: simulate an unclean exit

        reopened = open_catalog(
            self.DESCRIPTORS,
            state_root=tmp_path,
            service_options={"batch_size": 4},
        )
        try:
            homes = reopened.get("ListProperty")
            movies = reopened.get("Movies")
            assert homes.health()["durability"]["replayed_on_boot"] == 3
            assert movies.health()["durability"]["replayed_on_boot"] == 0
            assert homes.health()["durability"]["warm_start"] is True
            assert homes.health()["recorded"] == 3
            assert movies.health()["recorded"] == 0
            for health in (homes.health(), movies.health()):
                assert (
                    health["published"] + health["pending"] + health["spilled"]
                    == health["recorded"]
                )
        finally:
            reopened.close()

    def test_state_lives_under_per_table_dirs(self, tmp_path):
        catalog = open_catalog(self.DESCRIPTORS, state_root=tmp_path)
        try:
            for name in ("ListProperty", "Movies"):
                assert (tmp_path / name / "table.snap").exists()
                assert (tmp_path / name / "stats.snap").exists()
                assert (tmp_path / name / "journal").is_dir()
        finally:
            catalog.close()

    def test_explicit_default_validated_at_open(self, tmp_path):
        with pytest.raises(UnknownTable):
            open_catalog(self.DESCRIPTORS, default="Nope", state_root=tmp_path)
        # The half-open relations were closed again: their journal lock
        # files must not linger.
        reopened = open_catalog(self.DESCRIPTORS, state_root=tmp_path)
        reopened.close()
