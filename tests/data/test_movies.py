"""Tests for the movie-domain dataset and workload."""

import pytest

from repro.data.movies import (
    CERTIFICATES,
    GENRES,
    MOVIE_SEPARATION_INTERVALS,
    generate_movie_workload,
    generate_movies,
    movie_schema,
)
from repro.workload.preprocess import preprocess_workload


@pytest.fixture(scope="module")
def movies():
    return generate_movies(rows=3_000, seed=3)


@pytest.fixture(scope="module")
def movie_workload():
    return generate_movie_workload(queries=2_000, seed=5)


class TestCatalog:
    def test_row_count(self, movies):
        assert len(movies) == 3_000

    def test_deterministic(self):
        a = generate_movies(rows=100, seed=1)
        b = generate_movies(rows=100, seed=1)
        assert a.to_dicts() == b.to_dicts()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_movies(rows=0)

    def test_domains(self, movies):
        genres = {g for g, _, _ in GENRES}
        assert set(movies.column("genre")) <= genres
        assert set(movies.column("certificate")) <= set(CERTIFICATES)
        for year in movies.column("year"):
            assert 1920 <= year <= 2004
        for rating in movies.column("rating"):
            assert 1.0 <= rating <= 9.8
        for runtime in movies.column("runtime"):
            assert 60 <= runtime <= 240

    def test_genre_skew(self, movies):
        from collections import Counter

        counts = Counter(movies.column("genre"))
        assert counts["Drama"] > counts["Western"] * 3

    def test_schema_kinds(self):
        schema = movie_schema()
        assert schema.attribute("genre").is_categorical
        assert schema.attribute("rating").is_numeric
        assert len(schema) == 7


class TestWorkload:
    def test_count_and_parseability(self, movie_workload):
        assert len(movie_workload) == 2_000
        assert all(len(q.conditions) >= 1 for q in movie_workload)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_movie_workload(queries=0)

    def test_elimination_keeps_core_attributes(self, movies, movie_workload):
        stats = preprocess_workload(
            movie_workload, movies.schema, MOVIE_SEPARATION_INTERVALS
        )
        retained = {
            a for a in movies.schema.names()
            if stats.usage_fraction(a) >= 0.4
        }
        assert {"genre", "rating", "year"} <= retained
        assert "certificate" not in retained
        assert "votes" not in retained

    def test_rating_floors_on_half_grid(self, movie_workload):
        import math

        floors = []
        for q in movie_workload:
            bounds = q.range_bounds("rating")
            if bounds and not math.isinf(bounds[0]):
                floors.append(bounds[0])
        assert floors
        assert all(f % 0.5 == 0 for f in floors)


class TestCrossDomainCategorization:
    def test_cost_based_tree_on_movies(self, movies, movie_workload):
        from repro.core.algorithm import CostBasedCategorizer
        from repro.core.config import CategorizerConfig
        from repro.relational.expressions import RangePredicate
        from repro.relational.query import SelectQuery

        config = CategorizerConfig(
            separation_intervals=MOVIE_SEPARATION_INTERVALS
        )
        stats = preprocess_workload(
            movie_workload, movies.schema, MOVIE_SEPARATION_INTERVALS
        )
        query = SelectQuery("Movies", RangePredicate("rating", 6.0, 10.0))
        rows = query.execute(movies)
        assert len(rows) > 100
        tree = CostBasedCategorizer(stats, config).categorize(rows, query)
        tree.validate()
        assert tree.depth() >= 2
        assert tree.level_attributes()[0] in {"genre", "rating", "year"}
