"""Tests for the attribute-value samplers."""

import random

import pytest

from repro.data.distributions import (
    PROPERTY_TYPES,
    sample_bathrooms,
    sample_bedrooms,
    sample_price,
    sample_property_type,
    sample_square_footage,
    sample_year_built,
    weighted_choice,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestPrice:
    def test_snapped_to_5k(self, rng):
        for _ in range(200):
            assert sample_price(rng, 400_000, 0.4) % 5_000 == 0

    def test_bounded(self, rng):
        for _ in range(200):
            assert 30_000 <= sample_price(rng, 400_000, 0.4) <= 5_000_000

    def test_price_factor_shifts_distribution(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        cheap = [sample_price(rng_a, 400_000, 0.3, 0.6) for _ in range(500)]
        dear = [sample_price(rng_b, 400_000, 0.3, 1.6) for _ in range(500)]
        assert sum(dear) / len(dear) > sum(cheap) / len(cheap) * 1.5


class TestPropertyType:
    def test_known_types_only(self, rng):
        for _ in range(200):
            assert sample_property_type(rng, 0.3) in PROPERTY_TYPES

    def test_condo_share_respected(self):
        rng = random.Random(5)
        samples = [sample_property_type(rng, 0.8) for _ in range(1000)]
        condos = samples.count("Condo/Townhome") / len(samples)
        assert 0.7 < condos < 0.9


class TestBedrooms:
    def test_range(self, rng):
        for _ in range(200):
            beds = sample_bedrooms(rng, 400_000, 400_000, "Single Family Home")
            assert 1 <= beds <= 9

    def test_land_has_zero(self, rng):
        assert sample_bedrooms(rng, 400_000, 400_000, "Land") == 0

    def test_price_correlation(self):
        rng = random.Random(3)
        cheap = [sample_bedrooms(rng, 150_000, 400_000, "Single Family Home") for _ in range(500)]
        dear = [sample_bedrooms(rng, 1_200_000, 400_000, "Single Family Home") for _ in range(500)]
        assert sum(dear) / 500 > sum(cheap) / 500


class TestBathrooms:
    def test_half_steps(self, rng):
        for beds in range(1, 8):
            baths = sample_bathrooms(rng, beds)
            assert (baths * 2) == int(baths * 2)

    def test_zero_bedrooms_zero_baths(self, rng):
        assert sample_bathrooms(rng, 0) == 0.0

    def test_minimum_one(self, rng):
        for _ in range(100):
            assert sample_bathrooms(rng, 1) >= 1.0


class TestSquareFootage:
    def test_snapped_to_50(self, rng):
        for _ in range(100):
            assert sample_square_footage(rng, 3, "Single Family Home") % 50 == 0

    def test_land_is_zero(self, rng):
        assert sample_square_footage(rng, 0, "Land") == 0

    def test_bedroom_correlation(self):
        rng = random.Random(4)
        small = [sample_square_footage(rng, 1, "Condo/Townhome") for _ in range(300)]
        large = [sample_square_footage(rng, 5, "Single Family Home") for _ in range(300)]
        assert sum(large) / 300 > sum(small) / 300 * 1.5


class TestYearBuilt:
    def test_bounded(self, rng):
        for _ in range(200):
            year = sample_year_built(rng, 1960, "Single Family Home")
            assert 1880 <= year <= 2004

    def test_condos_newer_on_average(self):
        rng = random.Random(6)
        houses = [sample_year_built(rng, 1960, "Single Family Home") for _ in range(500)]
        condos = [sample_year_built(rng, 1960, "Condo/Townhome") for _ in range(500)]
        assert sum(condos) / 500 > sum(houses) / 500


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(7)
        picks = [weighted_choice(rng, ["a", "b"], [9.0, 1.0]) for _ in range(1000)]
        assert picks.count("a") > 800

    def test_single_item(self, rng):
        assert weighted_choice(rng, ["only"], [1.0]) == "only"
