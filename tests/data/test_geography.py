"""Tests for the static geography."""

import pytest

from repro.data.geography import (
    ALL_REGIONS,
    NYC,
    SEATTLE_BELLEVUE,
    region_by_name,
    region_of_neighborhood,
)


class TestStructure:
    def test_at_least_ten_regions(self):
        assert len(ALL_REGIONS) >= 10

    def test_region_names_unique(self):
        names = [r.name for r in ALL_REGIONS]
        assert len(names) == len(set(names))

    def test_neighborhood_names_globally_unique(self):
        names = [n for r in ALL_REGIONS for n in r.neighborhood_names()]
        assert len(names) == len(set(names))

    def test_every_neighborhood_belongs_to_a_region_city(self):
        for region in ALL_REGIONS:
            cities = {c.name for c in region.cities}
            for hood in region.neighborhoods:
                assert hood.city in cities, (region.name, hood.name)

    def test_neighborhood_names_carry_state(self):
        for region in ALL_REGIONS:
            for hood in region.neighborhoods:
                state = region.city(hood.city).state
                assert hood.name.endswith(f", {state}")

    def test_nyc_has_fifteen_neighborhoods(self):
        # Task 3 of the user study selects "15 selected neighborhoods in
        # NYC - Manhattan, Bronx"; the geography provides exactly 15.
        assert len(NYC.neighborhood_names()) == 15

    def test_market_sizes_span_an_order_of_magnitude(self):
        sizes = [sum(c.weight for c in r.cities) for r in ALL_REGIONS]
        assert max(sizes) / min(sizes) > 10


class TestLookups:
    def test_region_by_name(self):
        assert region_by_name("Seattle/Bellevue") is SEATTLE_BELLEVUE

    def test_region_by_name_unknown(self):
        with pytest.raises(KeyError, match="valid"):
            region_by_name("Atlantis")

    def test_region_of_neighborhood(self):
        assert region_of_neighborhood("Queen Anne, WA") is SEATTLE_BELLEVUE

    def test_region_of_unknown_neighborhood(self):
        with pytest.raises(KeyError):
            region_of_neighborhood("Nowhere, XX")

    def test_city_lookup(self):
        assert SEATTLE_BELLEVUE.city("Bellevue").state == "WA"

    def test_city_lookup_unknown(self):
        with pytest.raises(KeyError):
            SEATTLE_BELLEVUE.city("Manhattan")


class TestMarketParameters:
    def test_prices_positive(self):
        for region in ALL_REGIONS:
            for city in region.cities:
                assert city.base_price > 0
                assert city.price_sigma > 0

    def test_condo_shares_are_probabilities(self):
        for region in ALL_REGIONS:
            for city in region.cities:
                assert 0.0 <= city.condo_share <= 1.0

    def test_median_years_plausible(self):
        for region in ALL_REGIONS:
            for city in region.cities:
                assert 1880 <= city.median_year_built <= 2004
