"""Tests for the ListProperty generator."""

import pytest

from repro.data.geography import ALL_REGIONS, SEATTLE_BELLEVUE
from repro.data.homes import ListPropertyGenerator, generate_homes, list_property_schema


class TestSchema:
    def test_paper_attributes_present(self):
        names = set(list_property_schema().names())
        assert {
            "neighborhood", "city", "state", "zipcode", "price",
            "bedroomcount", "bathcount", "yearbuilt", "propertytype",
            "squarefootage",
        } <= names

    def test_zipcode_is_categorical_int(self):
        attr = list_property_schema().attribute("zipcode")
        assert attr.is_categorical
        assert attr.data_type.is_numeric()

    def test_price_is_numeric(self):
        assert list_property_schema().attribute("price").is_numeric


class TestGeneration:
    def test_row_count(self, homes_table):
        assert len(homes_table) == 4_000

    def test_deterministic(self):
        a = generate_homes(rows=200, seed=5)
        b = generate_homes(rows=200, seed=5)
        assert a.to_dicts() == b.to_dicts()

    def test_different_seeds_differ(self):
        a = generate_homes(rows=200, seed=5)
        b = generate_homes(rows=200, seed=6)
        assert a.to_dicts() != b.to_dicts()

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(ValueError):
            ListPropertyGenerator(rows=0).generate()

    def test_neighborhoods_come_from_geography(self, homes_table):
        valid = {n for r in ALL_REGIONS for n in r.neighborhood_names()}
        assert set(homes_table.column("neighborhood")) <= valid

    def test_city_consistent_with_neighborhood(self, homes_table):
        hood_city = {
            h.name: h.city for r in ALL_REGIONS for h in r.neighborhoods
        }
        for row in homes_table:
            assert row["city"] == hood_city[row["neighborhood"]]

    def test_zipcode_stable_per_neighborhood(self, homes_table):
        seen: dict[str, int] = {}
        for row in homes_table:
            hood = row["neighborhood"]
            if hood in seen:
                assert seen[hood] == row["zipcode"]
            seen[hood] = row["zipcode"]

    def test_no_nulls_in_paper_attributes(self, homes_table):
        # The paper notes these attributes are non-null in the MSN data.
        for name in ("neighborhood", "price", "bedroomcount", "yearbuilt"):
            assert all(v is not None for v in homes_table.column(name))

    def test_prices_on_5k_grid(self, homes_table):
        assert all(p % 5_000 == 0 for p in homes_table.column("price"))

    def test_market_skew(self, homes_table):
        seattle_hoods = set(SEATTLE_BELLEVUE.neighborhood_names())
        seattle = sum(
            1 for v in homes_table.column("neighborhood") if v in seattle_hoods
        )
        # Seattle/Bellevue is the biggest market (~40% of inventory).
        assert seattle / len(homes_table) > 0.25

    def test_bedrooms_zero_only_for_land(self, homes_table):
        for row in homes_table:
            if row["bedroomcount"] == 0:
                assert row["propertytype"] == "Land"
