"""Telemetry-suite fixtures: service factory, perf toggle, leak guard."""

from __future__ import annotations

import pytest

from repro import perf, telemetry
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService

#: A broad query whose result set is worth categorizing (same as serving).
SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"
LOG_SQL = "SELECT * FROM ListProperty WHERE bedroomcount = 3"


@pytest.fixture(autouse=True)
def no_leaked_pipeline():
    """Fail fast if a test leaves a pipeline installed process-wide."""
    yield
    leaked = telemetry.uninstall()
    assert leaked is None, "test leaked an installed telemetry pipeline"


@pytest.fixture
def make_service(homes_table, statistics):
    """Factory for services over the shared table with private statistics."""

    def _make(**kwargs) -> CategorizationService:
        kwargs.setdefault("batch_size", 8)
        relation = Relation(homes_table, statistics.copy())
        return CategorizationService(relation, **kwargs)

    return _make


@pytest.fixture
def perf_on():
    """Enable instrumentation for one test; yields the active registry."""
    perf.reset()
    perf.enable()
    yield perf.ACTIVE
    perf.reset()
    perf.disable()


def counter_total(inst, name: str) -> int:
    """Sum a counter across its label series (``serve.rung`` et al.)."""
    from repro.perf.instrument import split_series_key

    return sum(
        value
        for key, value in inst.counters.items()
        if split_series_key(key)[0] == name
    )
