"""End-to-end telemetry: live front end -> sink -> audit reconstruction.

The CI smoke's invariant, asserted in-process: at sample rate 1.0 the
audit must reconstruct every request the load generator saw, with zero
partial traces, zero orphaned events, and distribution totals equal to
the server's own ``/metrics`` counters.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import telemetry
from repro.relational.expressions import Conjunction, InPredicate, RangePredicate
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.serving.aserve import start_in_thread
from repro.serving.loadgen import run_loadgen
from repro.telemetry import RotatingJsonlSink, TelemetryPipeline
from repro.telemetry.audit import audit_files

from tests.telemetry.conftest import LOG_SQL, SERVE_SQL, counter_total


class TestAsyncFrontEndRoundTrip:
    def test_audit_reconstructs_every_request_and_matches_metrics(
        self, tmp_path, make_service, perf_on
    ):
        service = make_service()
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        pipeline = TelemetryPipeline(sink, sample_rate=1.0)
        with telemetry.installed(pipeline):
            handle = start_in_thread(service, max_inflight=8)
            try:
                load = run_loadgen(
                    handle.url,
                    sqls=[SERVE_SQL, LOG_SQL],
                    clients=4,
                    requests_per_client=5,
                    timeout_s=30.0,
                )
            finally:
                handle.stop()
        assert pipeline.close()
        assert pipeline.dropped == 0

        report = audit_files(sink.segments())
        # Reconstruction: every request the generator saw is a trace root,
        # fully joined — nothing partial, nothing orphaned.
        assert load.errors == 0
        assert report["requests"] == load.responses == 20
        assert report["complete"] == report["requests"]
        assert report["partial"] == 0
        assert report["orphaned_events"] == 0
        assert report["skipped_lines"] == 0

        # Distribution totals equal the server's /metrics counters.
        assert report["shed"] == counter_total(perf_on, "aserve.shed")
        assert report["coalesced"] == counter_total(perf_on, "aserve.coalesced")
        assert report["shed"] == load.status_counts.get(503, 0)
        assert report["coalesced"] == load.coalesced
        hits = counter_total(perf_on, "service.cache_hits")
        misses = counter_total(perf_on, "service.cache_misses")
        served = sum(slot["hits"] + slot["misses"] for slot in report["cache"].values())
        assert served == hits + misses == sum(report["rungs"].values())
        # Coalesced followers never reach the service; everyone else does.
        ok = load.status_counts.get(200, 0)
        assert served == ok - report["coalesced"]

        # Every fresh (uncached) tree shipped its decision digest.
        assert report["quality"]["decision_events"] == misses
        assert report["quality"]["chosen_attributes"]

    def test_sampling_rate_zero_ships_nothing(self, tmp_path, make_service):
        service = make_service()
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        pipeline = TelemetryPipeline(sink, sample_rate=0.0)
        with telemetry.installed(pipeline):
            handle = start_in_thread(service, max_inflight=8)
            try:
                load = run_loadgen(
                    handle.url,
                    sqls=[SERVE_SQL],
                    clients=2,
                    requests_per_client=3,
                    timeout_s=30.0,
                )
            finally:
                handle.stop()
        assert pipeline.close()
        assert load.errors == 0
        assert pipeline.emitted == 0
        report = audit_files(sink.segments())
        assert report["requests"] == 0


class TestShardedBackendEvents:
    @pytest.fixture
    def sharded_table(self):
        schema = TableSchema(
            "Props",
            (
                Attribute("kind", DataType.TEXT, AttributeKind.CATEGORICAL),
                Attribute("count", DataType.INT, AttributeKind.NUMERIC),
            ),
        )
        rows = [
            {"kind": ("alpha", "beta", "gamma")[i % 3], "count": i % 50}
            for i in range(600)
        ]
        executor = ProcessPoolExecutor(max_workers=2)
        table = Table.from_rows(
            schema,
            rows,
            backend="sharded",
            backend_options={
                "workers": 2,
                "min_parallel_rows": 0,
                "executor": executor,
            },
        )
        try:
            yield table
        finally:
            table.close()
            executor.shutdown(wait=False, cancel_futures=True)

    def test_scoped_requests_emit_per_shard_timings(self, sharded_table):
        predicate = Conjunction(
            [InPredicate("kind", ["alpha", "beta"]), RangePredicate("count", 5, 40)]
        )
        sink_events = []

        class Sink:
            def write(self, events):
                sink_events.extend(events)

            def close(self):
                pass

        pipeline = TelemetryPipeline(Sink())
        with telemetry.installed(pipeline):
            baseline = sharded_table.select(predicate).indices  # unscoped
            with telemetry.scope("req-000042"):
                scoped = sharded_table.select(predicate).indices
        assert pipeline.close()

        assert scoped == baseline
        shard_events = [e for e in sink_events if e["type"] == "shards"]
        # Only the scoped (sampled) request times its shards.
        assert shard_events
        for event in shard_events:
            assert event["trace_id"] == "req-000042"
            assert event["op"] in ("select", "bucket", "groupby")
            assert event["shards"] == len(event["shard_ms"])
            assert event["elapsed_ms"] >= 0.0
