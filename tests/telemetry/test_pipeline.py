"""Pipeline and sink tests: rotation, backpressure, sampling, lifecycle.

The pressure tests are the contract behind "telemetry never blocks a
request": a sink wedged mid-write must leave ``emit`` fast and lossy
(drops counted), and a wedged shutdown must time out rather than hang.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import telemetry
from repro.telemetry import (
    SCHEMA,
    RotatingJsonlSink,
    TelemetryPipeline,
    trace_root,
)
from repro.telemetry.audit import load_events


class GateSink:
    """A sink whose writes block until the test opens the gate."""

    def __init__(self):
        self.gate = threading.Event()
        self.events = []
        self.closed = False

    def write(self, events):
        assert self.gate.wait(timeout=10.0), "test forgot to open the gate"
        self.events.extend(events)

    def close(self):
        self.closed = True


class ListSink:
    def __init__(self):
        self.events = []
        self.closed = False

    def write(self, events):
        self.events.extend(events)

    def close(self):
        self.closed = True


class BrokenSink:
    def write(self, events):
        raise OSError("disk on fire")

    def close(self):
        pass


def read_lines(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line
    ]


class TestRotatingJsonlSink:
    def test_every_segment_opens_with_a_schema_meta_line(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        sink.write([{"type": "frontend", "trace_id": "req-000001"}])
        sink.close()
        lines = read_lines(tmp_path / "events.jsonl")
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == SCHEMA
        assert lines[0]["segment"] == 0
        assert lines[1]["trace_id"] == "req-000001"

    def test_rotates_at_max_bytes_and_loses_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = RotatingJsonlSink(path, max_bytes=1024)
        padding = "x" * 120
        for i in range(40):
            sink.write([{"type": "service", "trace_id": f"req-{i:06d}", "pad": padding}])
        sink.close()

        assert len(sink.rotated) >= 2
        # Rotated names ascend and the bare path is the newest segment.
        assert sink.rotated[0] == path.with_name("events.jsonl.1")
        assert sink.segments()[-1] == path
        for segment in sink.segments():
            assert segment.exists()
            assert read_lines(segment)[0]["schema"] == SCHEMA
        # The audit loader recovers every event across all segments.
        events, skipped = load_events(sink.segments())
        assert skipped == 0
        assert sorted(e["trace_id"] for e in events) == sorted(
            f"req-{i:06d}" for i in range(40)
        )

    def test_rotations_are_counted(self, tmp_path, perf_on):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl", max_bytes=1024)
        for i in range(40):
            sink.write([{"type": "service", "trace_id": f"req-{i:06d}", "pad": "x" * 120}])
        sink.close()
        assert perf_on.counters.get("telemetry.rotations") == len(sink.rotated)

    def test_fsync_always_policy_writes_through(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl", fsync_policy="always")
        sink.write([{"type": "frontend", "trace_id": "req-000001"}])
        # Durable before close: another reader sees the line already.
        assert len(read_lines(tmp_path / "events.jsonl")) == 2
        sink.close()
        sink.close()  # idempotent

    def test_non_json_values_stringify_instead_of_crashing(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        sink.write([{"type": "service", "trace_id": "req-000001", "path": tmp_path}])
        sink.close()
        assert read_lines(tmp_path / "events.jsonl")[1]["path"] == str(tmp_path)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_bytes": 512},
            {"fsync_policy": "sometimes"},
        ],
    )
    def test_invalid_options_raise(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            RotatingJsonlSink(tmp_path / "events.jsonl", **kwargs)


class TestPipelineLifecycle:
    def test_emitted_events_reach_the_sink(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        pipeline = TelemetryPipeline(sink)
        for i in range(25):
            assert pipeline.emit("frontend", f"req-{i:06d}", status=200)
        assert pipeline.flush()
        assert pipeline.close()
        events, _ = load_events(sink.segments())
        assert len(events) == 25
        assert pipeline.stats() == {
            "emitted": 25,
            "dropped": 0,
            "written": 25,
            "write_errors": 0,
        }

    def test_close_flushes_the_queued_tail(self, tmp_path):
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        pipeline = TelemetryPipeline(sink, queue_capacity=512)
        for i in range(100):
            pipeline.emit("service", f"req-{i:06d}", rung="full")
        # No flush: close() alone must drain whatever was accepted.
        assert pipeline.close()
        events, _ = load_events(sink.segments())
        assert len(events) == 100

    def test_emit_after_close_is_refused(self):
        pipeline = TelemetryPipeline(ListSink())
        assert pipeline.close()
        assert not pipeline.emit("frontend", "req-000001")
        assert pipeline.close()  # idempotent

    def test_sink_write_errors_are_counted_not_raised(self):
        pipeline = TelemetryPipeline(BrokenSink())
        assert pipeline.emit("frontend", "req-000001")
        assert pipeline.flush()
        assert pipeline.close()
        assert pipeline.write_errors == 1
        assert pipeline.written == 0

    @pytest.mark.parametrize(
        "kwargs", [{"sample_rate": -0.1}, {"sample_rate": 1.5}, {"queue_capacity": 0}]
    )
    def test_invalid_options_raise(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryPipeline(ListSink(), **kwargs)


class TestBackpressure:
    def test_full_queue_drops_and_counts_instead_of_blocking(self, perf_on):
        sink = GateSink()
        pipeline = TelemetryPipeline(sink, queue_capacity=4)
        try:
            accepted = 0
            worst = 0.0
            for i in range(40):
                started = time.perf_counter()
                if pipeline.emit("frontend", f"req-{i:06d}"):
                    accepted += 1
                worst = max(worst, time.perf_counter() - started)
            # The writer holds at most one in-flight event on top of the
            # queue capacity; everything else must have been dropped.
            assert accepted <= 5
            assert pipeline.dropped == 40 - accepted
            assert perf_on.counters.get("telemetry.dropped") == pipeline.dropped
            # A sink wedged for seconds never shows up in emit latency.
            assert worst < 0.05
            sink.gate.set()
            assert pipeline.flush()
            assert len(sink.events) == accepted
        finally:
            sink.gate.set()
            assert pipeline.close()

    def test_wedged_sink_cannot_hold_shutdown_hostage(self):
        sink = GateSink()
        pipeline = TelemetryPipeline(sink, queue_capacity=4)
        pipeline.emit("frontend", "req-000001")
        pipeline.emit("frontend", "req-000002")
        started = time.perf_counter()
        drained = pipeline.close(timeout_s=0.5)
        elapsed = time.perf_counter() - started
        sink.gate.set()  # release the writer thread after the verdict
        assert not drained
        assert elapsed < 2.0


class TestSampling:
    def test_rate_extremes(self):
        always = TelemetryPipeline(ListSink(), sample_rate=1.0)
        never = TelemetryPipeline(ListSink(), sample_rate=0.0)
        try:
            assert always.sampled("req-000001")
            assert not never.sampled("req-000001")
            assert not always.sampled(None)  # unjoinable, even at rate 1.0
        finally:
            always.close()
            never.close()

    def test_decision_is_deterministic_and_batch_statements_share_fate(self):
        pipeline = TelemetryPipeline(ListSink(), sample_rate=0.3)
        try:
            ids = [f"req-{i:06d}" for i in range(2000)]
            first = [pipeline.sampled(i) for i in ids]
            assert first == [pipeline.sampled(i) for i in ids]
            assert all(
                pipeline.sampled(f"{i}#7") == pipeline.sampled(i) for i in ids
            )
            assert trace_root("req-000042#7") == "req-000042"
            assert trace_root("req-000042") == "req-000042"
            # crc32 is uniform enough that the hit fraction tracks the rate.
            fraction = sum(first) / len(first)
            assert 0.25 < fraction < 0.35
        finally:
            pipeline.close()


class TestModuleRuntime:
    def test_emit_without_installed_pipeline_is_a_cheap_no_op(self):
        assert telemetry.active() is None
        assert not telemetry.emit("frontend", "req-000001", status=200)
        assert telemetry.scoped_trace_id() is None
        with telemetry.scope("req-000001"):
            # Scope alone is inert: no pipeline, no sampled request.
            assert telemetry.scoped_trace_id() is None

    def test_installed_scopes_install_and_always_uninstall(self):
        pipeline = TelemetryPipeline(ListSink())
        try:
            with telemetry.installed(pipeline) as active:
                assert active is pipeline
                assert telemetry.active() is pipeline
                assert telemetry.emit("frontend", "req-000001", status=200)
                with telemetry.scope("req-000001"):
                    assert telemetry.scoped_trace_id() == "req-000001"
                assert telemetry.scoped_trace_id() is None
            assert telemetry.active() is None
            assert pipeline.flush()
            assert pipeline.sink.events[0]["status"] == 200
        finally:
            pipeline.close()

    def test_module_emit_respects_the_sampling_decision(self):
        pipeline = TelemetryPipeline(ListSink(), sample_rate=0.0)
        try:
            with telemetry.installed(pipeline):
                assert not telemetry.emit("frontend", "req-000001")
            assert pipeline.emitted == 0
        finally:
            pipeline.close()
