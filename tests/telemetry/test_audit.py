"""Audit-tool tests: event loading, trace joins, report math, diffs.

Synthetic events pin the join/report logic exactly; one test runs a real
service through a real pipeline so the digest shapes stay honest against
the emitters.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry import RotatingJsonlSink, TelemetryPipeline, decision_digest
from repro.telemetry.audit import (
    audit_files,
    build_report,
    diff_reports,
    format_diff,
    format_report,
    group_traces,
    load_events,
    percentile,
)

from tests.telemetry.conftest import SERVE_SQL


def fe(trace_id, **overrides):
    event = {
        "type": "frontend",
        "trace_id": trace_id,
        "frontend": "async",
        "route": "/categorize",
        "status": 200,
        "outcome": "ok",
        "queue_ms": 1.0,
        "compute_ms": 5.0,
        "respond_ms": 0.5,
        "pressure": 0.1,
        "tightened": False,
        "coalesced": False,
    }
    event.update(overrides)
    return event


def svc(trace_id, **overrides):
    event = {
        "type": "service",
        "trace_id": trace_id,
        "table": "ListProperty",
        "technique": "greedy",
        "rung": "full",
        "cached": False,
        "chosen": ["price", "bedroomcount"],
    }
    event.update(overrides)
    return event


def dec(trace_id, **overrides):
    event = {
        "type": "decision",
        "trace_id": trace_id,
        "eliminated": [{"attribute": "schooldistrict", "usage_fraction": 0.01}],
        "levels": [
            {
                "level": 0,
                "chosen": "price",
                "cost_all": 100.0,
                "cost_one": 40.0,
                "runner_up": "city",
                "delta_cost_all": 2.0,
                "delta_cost_one": 1.0,
            }
        ],
    }
    event.update(overrides)
    return event


def shards(trace_id, **overrides):
    event = {
        "type": "shards",
        "trace_id": trace_id,
        "op": "select",
        "shards": 4,
        "shard_ms": [1.0, 1.1, 0.9, 1.2],
        "elapsed_ms": 1.5,
    }
    event.update(overrides)
    return event


class TestLoadEvents:
    def test_skips_meta_and_counts_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"type": "meta", "schema": "repro.telemetry.v1"}),
                    json.dumps(fe("req-000001")),
                    '{"type": "service", "trace_id": "req-0000',  # torn tail
                    "",
                    json.dumps(svc("req-000001")),
                ]
            ),
            encoding="utf-8",
        )
        events, skipped = load_events([path])
        assert [e["type"] for e in events] == ["frontend", "service"]
        assert skipped == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events([tmp_path / "nope.jsonl"])


class TestJoins:
    def test_batch_statements_join_to_their_root(self):
        events = [
            fe("req-000001", route="/categorize_batch"),
            svc("req-000001#0"),
            svc("req-000001#1"),
            dec("req-000001#1"),
        ]
        groups = group_traces(events)
        assert set(groups) == {"req-000001"}
        group = groups["req-000001"]
        assert len(group.service) == 2
        assert len(group.decisions) == 1
        assert not group.partial

    def test_ok_frontend_without_service_event_is_partial(self):
        groups = group_traces([fe("req-000001")])
        assert groups["req-000001"].partial

    def test_shed_and_coalesced_frontends_expect_no_service_event(self):
        events = [
            fe("req-000001", status=503, outcome="shed"),
            fe("req-000002", coalesced=True, leader_trace_id="req-000003"),
        ]
        groups = group_traces(events)
        assert not groups["req-000001"].partial
        assert not groups["req-000002"].partial

    def test_decisions_without_service_event_are_orphaned(self):
        groups = group_traces([dec("req-000001"), shards("req-000001")])
        group = groups["req-000001"]
        assert group.orphaned_events() == 2
        assert group.partial

    def test_events_without_trace_id_are_ignored(self):
        assert group_traces([{"type": "frontend"}, {"type": "service", "trace_id": ""}]) == {}


class TestBuildReport:
    def report(self):
        events = [
            fe("req-000001", queue_ms=1.0, compute_ms=10.0),
            svc("req-000001"),
            dec("req-000001"),
            shards("req-000001"),
            fe("req-000002", queue_ms=3.0, compute_ms=20.0),
            svc("req-000002", cached=True, rung="single_level"),
            fe("req-000003", status=503, outcome="shed"),
            fe("req-000004", coalesced=True, leader_trace_id="req-000002"),
            fe("req-000005", tightened=True, deadline_ms=40.0),
            # req-000005 lost its service event: partial.
        ]
        return build_report(events, skipped_lines=2, files=["events.jsonl"])

    def test_reconstruction_counters(self):
        report = self.report()
        assert report["requests"] == 5
        assert report["partial"] == 1
        assert report["partial_trace_ids"] == ["req-000005"]
        assert report["complete"] == 4
        assert report["orphaned_events"] == 0
        assert report["skipped_lines"] == 2
        assert report["shed"] == 1
        assert report["coalesced"] == 1
        assert report["tightened"] == 1
        assert report["statuses"]["503"] == 1

    def test_waterfall_and_distributions(self):
        report = self.report()
        queue = report["waterfall_ms"]["queue"]
        assert queue["n"] == 5
        assert queue["max"] == 3.0
        assert report["rungs"] == {"full": 1, "single_level": 1}
        assert report["routes"]["/categorize"] == 5

    def test_cache_ratio_by_table_and_technique(self):
        report = self.report()
        slot = report["cache"]["ListProperty/greedy"]
        assert slot == {"hits": 1, "misses": 1, "ratio": 0.5}

    def test_quality_digest(self):
        report = self.report()
        quality = report["quality"]
        assert quality["decision_events"] == 1
        assert quality["levels"] == 1
        # delta 2.0 on cost 100.0 is a 2% margin: contested.
        assert quality["contested_levels"] == 1
        assert quality["chosen_attributes"]["price"] == 2
        assert quality["eliminations"] == {"schooldistrict": 1}
        assert quality["delta_cost_all"]["mean"] == 2.0
        assert report["shards"]["select"]["calls"] == 1

    def test_percentile_is_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0


class TestDiffAndRendering:
    def test_diff_compares_fractions_not_absolutes(self):
        current = build_report(
            [fe("req-000001"), svc("req-000001"), fe("req-000002"), svc("req-000002")]
        )
        baseline = build_report(
            [fe("req-000009"), svc("req-000009", rung="single_level", chosen=["city"])]
        )
        diff = diff_reports(current, baseline)
        assert diff["requests"] == {"current": 2, "baseline": 1}
        assert diff["rung_mix"]["full"] == {"current": 1.0, "baseline": 0.0}
        assert diff["chosen_attributes"]["city"]["baseline"] == 1.0
        assert diff["chosen_attributes"]["price"]["current"] == 0.5

    def test_text_renderers_cover_every_section(self):
        report = TestBuildReport().report()
        text = format_report(report)
        for title in (
            "Reconstruction",
            "Latency waterfall",
            "Distributions",
            "Cache hit ratio",
            "Sharded kernels",
            "Tree quality digest",
            "Chosen attributes",
            "Eliminations",
        ):
            assert title in text
        assert "partial traces: req-000005" in text
        diff = diff_reports(report, report)
        assert "Audit diff" in format_diff(diff)


class TestAgainstRealEmitters:
    def test_decision_digest_shape_from_a_real_trace(self, make_service):
        service = make_service()
        result = service.categorize(SERVE_SQL, collect_trace=True)
        digest = decision_digest(result.tree.decision_trace)
        assert digest["technique"] == service.technique
        assert digest["levels"]
        for level in digest["levels"]:
            assert level["chosen"] is not None
            assert level["runner_up"] != level["chosen"]
            if level["delta_cost_all"] is not None:
                assert isinstance(level["delta_cost_all"], float)

    def test_service_pipeline_sink_audit_round_trip(self, tmp_path, make_service):
        service = make_service()
        sink = RotatingJsonlSink(tmp_path / "events.jsonl")
        pipeline = TelemetryPipeline(sink)
        with telemetry.installed(pipeline):
            first = service.categorize(SERVE_SQL)
            second = service.categorize(SERVE_SQL)
        assert pipeline.close()

        assert second.cached and not first.cached
        report = audit_files(sink.segments())
        # No front end ran, so service events stand alone: two requests,
        # nothing partial, and exactly one decision event (fresh tree only
        # — replaying the cached tree would re-ship another request's trace).
        assert report["requests"] == 2
        assert report["partial"] == 0
        assert report["orphaned_events"] == 0
        assert report["quality"]["service_events"] == 2
        assert report["quality"]["decision_events"] == 1
        slot = report["cache"][f"{service.table.schema.name}/{service.technique}"]
        assert slot == {"hits": 1, "misses": 1, "ratio": 0.5}
        assert report["quality"]["chosen_attributes"]
