"""Tests for the bench regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("compare_bench", compare_bench)
_SPEC.loader.exec_module(compare_bench)


def _write_trajectory(path, warm_values, fast_values=()):
    runs = [
        {"bench": "categorize_hot_path", "warm_ms": value}
        for value in warm_values
    ]
    runs += [
        {"bench": "partition_fast_path", "fast_ms": value}
        for value in fast_values
    ]
    path.write_text(json.dumps({"schema": "bench.partition.v1", "runs": runs}))
    return path


class TestGate:
    def test_regression_past_threshold_fails(self, tmp_path, capsys):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0, 12.5])
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path, capsys):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0, 11.9])
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0, 7.0])
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0

    def test_custom_threshold(self, tmp_path):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0, 11.5])
        args = ["--trajectory", str(trajectory), "--threshold"]
        assert compare_bench.main(args + ["0.10"]) == 1
        assert compare_bench.main(args + ["0.20"]) == 0

    def test_compares_only_the_two_most_recent_runs(self, tmp_path):
        # ancient slow run is ignored; the latest pair is an improvement
        trajectory = _write_trajectory(tmp_path / "t.json", [100.0, 10.0, 9.5])
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0

    def test_gates_the_fast_path_metric_too(self, tmp_path, capsys):
        trajectory = _write_trajectory(
            tmp_path / "t.json", [10.0, 10.0], fast_values=[2.0, 3.0]
        )
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 1
        assert "partition_fast_path.fast_ms" in capsys.readouterr().out


class TestNoBaseline:
    def test_missing_trajectory_passes(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert compare_bench.main(["--trajectory", str(missing)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_single_run_passes(self, tmp_path, capsys):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0])
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_trajectory_passes(self, tmp_path):
        trajectory = tmp_path / "t.json"
        trajectory.write_text("{not json")
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0

    def test_runs_missing_the_metric_are_skipped(self, tmp_path):
        trajectory = tmp_path / "t.json"
        trajectory.write_text(
            json.dumps(
                {
                    "runs": [
                        {"bench": "categorize_hot_path"},
                        {"bench": "categorize_hot_path", "warm_ms": "fast"},
                    ]
                }
            )
        )
        assert compare_bench.main(["--trajectory", str(trajectory)]) == 0


class TestValidation:
    def test_negative_threshold_rejected(self, tmp_path):
        trajectory = _write_trajectory(tmp_path / "t.json", [10.0, 10.0])
        with pytest.raises(SystemExit):
            compare_bench.main(
                ["--trajectory", str(trajectory), "--threshold", "-0.1"]
            )
