"""Tests for the JSON-lines and Prometheus exporters."""

import json
import re

import pytest

from repro.perf import Instrumentation, export_jsonl, export_prometheus


@pytest.fixture()
def inst():
    registry = Instrumentation(enabled=True)
    registry.count("cache.hit", 3, kind="partition")
    registry.count("cache.hit", 1, kind="groupby")
    registry.count("queries")
    registry.gauge("result.size", 1754)
    with registry.timer("preprocess"):
        pass
    with registry.span("categorize"):
        with registry.span("level"):
            pass
    return registry


class TestJsonLines:
    def test_every_line_parses_as_json(self, inst):
        lines = export_jsonl(inst).strip().split("\n")
        events = [json.loads(line) for line in lines]
        assert events[0]["type"] == "meta"
        assert {e["type"] for e in events} == {
            "meta", "counter", "gauge", "timer", "histogram", "span"
        }

    def test_counters_round_trip_with_labels(self, inst):
        events = [
            json.loads(line) for line in export_jsonl(inst).strip().split("\n")
        ]
        counters = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
            for e in events
            if e["type"] == "counter"
        }
        assert counters[("cache.hit", (("kind", "partition"),))] == 3
        assert counters[("cache.hit", (("kind", "groupby"),))] == 1
        assert counters[("queries", ())] == 1

    def test_span_paths_are_slash_joined(self, inst):
        events = [
            json.loads(line) for line in export_jsonl(inst).strip().split("\n")
        ]
        paths = [e["path"] for e in events if e["type"] == "span"]
        assert paths == ["categorize", "categorize/level"]

    def test_export_does_not_mutate(self, inst):
        before = inst.report()
        export_jsonl(inst)
        export_jsonl(inst)
        assert inst.report() == before


# One Prometheus sample line: name{optional labels} float-or-int
_SAMPLE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9]+(\.[0-9]+(e[+-]?[0-9]+)?)?$"
)


class TestPrometheus:
    def test_every_line_is_type_decl_or_sample(self, inst):
        for line in export_prometheus(inst).strip().split("\n"):
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4
                assert parts[3] in ("counter", "gauge", "summary")
            else:
                assert _SAMPLE.match(line), line

    def test_counter_series_share_one_type_line(self, inst):
        text = export_prometheus(inst)
        assert text.count("# TYPE repro_cache_hit_total counter") == 1
        assert 'repro_cache_hit_total{kind="partition"} 3' in text
        assert 'repro_cache_hit_total{kind="groupby"} 1' in text

    def test_names_are_sanitized_and_prefixed(self, inst):
        text = export_prometheus(inst)
        assert "repro_queries_total 1" in text
        assert "repro_result_size" in text
        assert "cache.hit" not in text  # dots never reach the wire

    def test_durations_export_as_summaries(self, inst):
        text = export_prometheus(inst)
        assert "# TYPE repro_duration_seconds summary" in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'quantile="{quantile}"' in text
        assert 'repro_duration_seconds_count{name="categorize"} 1' in text

    def test_span_paths_exported_with_path_label(self, inst):
        text = export_prometheus(inst)
        assert 'repro_span_calls_total{path="categorize/level"} 1' in text

    def test_sampling_decisions_always_present(self):
        empty = Instrumentation(enabled=True)
        text = export_prometheus(empty)
        assert 'repro_sampling_decisions_total{outcome="sampled"} 0' in text
        assert 'repro_sampling_decisions_total{outcome="skipped"} 0' in text

    def test_label_values_are_escaped(self):
        registry = Instrumentation(enabled=True)
        registry.count("odd", label='va"lue')
        text = export_prometheus(registry)
        assert 'label="va\\"lue"' in text


class TestLabelEscaping:
    """Regression: every escape the exposition format requires, round-tripped.

    A SQL fragment in a label once shipped a raw newline, splitting the
    sample across two lines and corrupting the whole scrape.
    """

    def test_backslash_quote_and_newline_all_escape(self):
        registry = Instrumentation(enabled=True)
        registry.count("odd", label='back\\slash "quoted"\nnewline')
        text = export_prometheus(registry)
        assert 'label="back\\\\slash \\"quoted\\"\\nnewline"' in text
        # The sample stays on one physical line.
        sample_lines = [l for l in text.splitlines() if l.startswith("repro_odd")]
        assert len(sample_lines) == 1

    def test_sql_like_label_value_survives(self):
        registry = Instrumentation(enabled=True)
        sql = 'SELECT * FROM "ListProperty"\nWHERE city = \'a\\b\''
        registry.count("serve.sql", sql=sql)
        text = export_prometheus(registry)
        line = next(l for l in text.splitlines() if l.startswith("repro_serve_sql"))
        assert "\n" not in line
        assert '\\"ListProperty\\"' in line


class TestDerivedCacheHitRatio:
    def test_gauge_appears_at_scrape_time_from_counters(self):
        registry = Instrumentation(enabled=True)
        registry.count("service.cache_hits", 3)
        registry.count("service.cache_misses", 1)
        text = export_prometheus(registry)
        assert "# TYPE repro_serve_cache_hit_ratio gauge" in text
        assert "repro_serve_cache_hit_ratio 0.75" in text

    def test_absent_without_any_cache_traffic(self, inst):
        assert "cache_hit_ratio" not in export_prometheus(inst)

    def test_label_split_series_still_sum(self):
        registry = Instrumentation(enabled=True)
        registry.count("service.cache_hits", 1, table="a")
        registry.count("service.cache_hits", 1, table="b")
        registry.count("service.cache_misses", 2)
        assert "repro_serve_cache_hit_ratio 0.5" in export_prometheus(registry)


class TestJsonDocument:
    def test_snapshot_mirrors_the_jsonl_stream(self, inst):
        from repro.perf import export_json, registry_snapshot

        snapshot = registry_snapshot(inst)
        assert {c["name"] for c in snapshot["counters"]} == {"cache.hit", "queries"}
        assert snapshot["gauges"] == [
            {"name": "result.size", "labels": {}, "value": 1754}
        ]
        assert [s["path"] for s in snapshot["spans"]] == [
            "categorize", "categorize/level"
        ]
        assert snapshot["timers"][0]["name"] == "preprocess"
        assert snapshot["histograms"][0]["count"] == 1

        document = json.loads(export_json(inst))
        assert document == json.loads(json.dumps(snapshot))

    def test_export_json_does_not_mutate(self, inst):
        from repro.perf import export_json

        before = inst.report()
        export_json(inst)
        assert inst.report() == before
