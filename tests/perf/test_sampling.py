"""Tests for trace sampling: policies, degenerate rates, span inheritance."""

import pytest

from repro.perf import Instrumentation, Sampler


class TestSamplerPolicies:
    def test_default_keeps_everything(self):
        sampler = Sampler()
        assert sampler.mode == "always"
        assert all(sampler.sample() for _ in range(10))
        assert sampler.sampled == 10
        assert sampler.skipped == 0

    def test_every_nth_is_deterministic(self):
        sampler = Sampler(every=4)
        decisions = [sampler.sample() for _ in range(12)]
        assert decisions == [True, False, False, False] * 3
        assert sampler.sampled == 3
        assert sampler.skipped == 9

    def test_rate_zero_records_nothing(self):
        sampler = Sampler(rate=0.0)
        assert not any(sampler.sample() for _ in range(20))
        assert sampler.sampled == 0

    def test_rate_one_records_everything(self):
        sampler = Sampler(rate=1.0)
        assert all(sampler.sample() for _ in range(20))
        assert sampler.skipped == 0

    def test_every_one_records_everything(self):
        sampler = Sampler(every=1)
        assert sampler.mode == "always"
        assert all(sampler.sample() for _ in range(20))

    def test_fractional_rate_is_seeded_and_reproducible(self):
        one, two = Sampler(rate=0.5, seed=11), Sampler(rate=0.5, seed=11)
        first = [one.sample() for _ in range(50)]
        second = [two.sample() for _ in range(50)]
        assert first == second
        assert True in first and False in first

    def test_reset_restarts_the_stream(self):
        sampler = Sampler(rate=0.5, seed=11)
        first = [sampler.sample() for _ in range(20)]
        sampler.reset()
        assert [sampler.sample() for _ in range(20)] == first
        sampler_every = Sampler(every=3)
        assert sampler_every.sample()
        sampler_every.reset()
        assert sampler_every.sample()  # tick restarted: 1st is kept again

    def test_validation(self):
        with pytest.raises(ValueError):
            Sampler(rate=0.5, every=2)
        with pytest.raises(ValueError):
            Sampler(rate=1.5)
        with pytest.raises(ValueError):
            Sampler(every=0)

    def test_as_dict(self):
        sampler = Sampler(every=10)
        sampler.sample()
        info = sampler.as_dict()
        assert info == {"mode": "every", "sampled": 1, "skipped": 0, "every": 10}


class TestSampledSpans:
    def test_skipped_root_suppresses_the_whole_trace(self):
        inst = Instrumentation(enabled=True)
        inst.set_sampling(every=2)
        for _ in range(4):
            with inst.span("root"):
                with inst.span("child"):
                    pass
        root = inst.spans.children["root"]
        assert root.calls == 2  # every other trace recorded
        assert root.children["child"].calls == 2  # children inherit, never orphan

    def test_rate_zero_spans_record_nothing_counters_still_on(self):
        inst = Instrumentation(enabled=True)
        inst.set_sampling(rate=0.0)
        with inst.span("root"):
            inst.count("hits")
            with inst.timer("load"):
                pass
        assert not inst.spans.children
        assert inst.counters["hits"] == 1
        assert inst.timers["load"][0] == 1

    def test_rate_one_is_identical_to_unsampled(self):
        sampled = Instrumentation(enabled=True)
        sampled.set_sampling(rate=1.0)
        plain = Instrumentation(enabled=True)
        for inst in (sampled, plain):
            for _ in range(3):
                with inst.span("root"):
                    with inst.span("child"):
                        pass
        assert (
            sampled.spans.children["root"].calls
            == plain.spans.children["root"].calls
        )
        assert (
            sampled.spans.children["root"].children["child"].calls
            == plain.spans.children["root"].children["child"].calls
        )

    def test_clear_sampling_returns_to_record_everything(self):
        inst = Instrumentation(enabled=True)
        inst.set_sampling(rate=0.0)
        with inst.span("skipped"):
            pass
        inst.clear_sampling()
        with inst.span("kept"):
            pass
        assert list(inst.spans.children) == ["kept"]

    def test_nested_spans_after_suppressed_trace_do_not_leak(self):
        inst = Instrumentation(enabled=True)
        inst.set_sampling(every=2)
        with inst.span("kept"):
            pass
        with inst.span("skipped"):  # 2nd root: suppressed
            with inst.span("inner"):
                pass
        with inst.span("kept"):  # 3rd root: recorded again
            pass
        assert list(inst.spans.children) == ["kept"]
        assert inst.spans.children["kept"].calls == 2

    def test_reset_clears_sampler_decisions(self):
        inst = Instrumentation(enabled=True)
        inst.set_sampling(every=3)
        for _ in range(5):
            with inst.span("root"):
                pass
        inst.reset()
        assert inst.sampler.sampled == 0
        assert inst.sampler.skipped == 0
        with inst.span("root"):
            pass
        assert inst.spans.children["root"].calls == 1  # stream restarted
