"""Tests for the instrumentation subsystem (counters, timers, spans)."""

import json

import pytest

from repro import perf
from repro.perf import Instrumentation


@pytest.fixture()
def inst():
    return Instrumentation(enabled=True)


class TestCounters:
    def test_count_accumulates(self, inst):
        inst.count("a")
        inst.count("a", 2)
        inst.count("b")
        assert inst.counters["a"] == 3
        assert inst.counters["b"] == 1

    def test_disabled_counts_nothing(self):
        inst = Instrumentation(enabled=False)
        inst.count("a")
        assert not inst.counters

    def test_reset_clears(self, inst):
        inst.count("a")
        inst.reset()
        assert not inst.counters


class TestTimers:
    def test_timer_accumulates_calls_and_seconds(self, inst):
        for _ in range(3):
            with inst.timer("phase"):
                pass
        calls, seconds = inst.timers["phase"]
        assert calls == 3
        assert seconds >= 0.0

    def test_disabled_timer_is_noop(self):
        inst = Instrumentation(enabled=False)
        with inst.timer("phase"):
            pass
        assert not inst.timers


class TestSpans:
    def test_nesting_builds_a_tree(self, inst):
        with inst.span("outer"):
            with inst.span("inner"):
                pass
            with inst.span("inner"):
                pass
        outer = inst.spans.children["outer"]
        assert outer.calls == 1
        inner = outer.children["inner"]
        assert inner.calls == 2
        assert outer.seconds >= inner.seconds

    def test_same_name_same_parent_aggregates(self, inst):
        for _ in range(5):
            with inst.span("repeated"):
                pass
        assert len(inst.spans.children) == 1
        assert inst.spans.children["repeated"].calls == 5

    def test_sibling_then_child_distinct_nodes(self, inst):
        with inst.span("a"):
            with inst.span("b"):
                pass
        with inst.span("b"):
            pass
        assert inst.spans.children["a"].children["b"].calls == 1
        assert inst.spans.children["b"].calls == 1

    def test_disabled_span_records_nothing(self):
        inst = Instrumentation(enabled=False)
        with inst.span("x"):
            pass
        assert not inst.spans.children

    def test_span_survives_exceptions(self, inst):
        with pytest.raises(RuntimeError):
            with inst.span("boom"):
                raise RuntimeError("boom")
        assert inst.spans.children["boom"].calls == 1
        # the current-span context is restored
        with inst.span("after"):
            pass
        assert "after" in inst.spans.children


class TestReporting:
    def test_report_is_json_serializable(self, inst):
        inst.count("hits", 2)
        with inst.timer("phase"):
            pass
        with inst.span("outer"):
            with inst.span("inner"):
                pass
        data = json.loads(inst.to_json())
        assert data["counters"] == {"hits": 2}
        assert data["timers"]["phase"]["calls"] == 1
        assert data["spans"][0]["name"] == "outer"
        assert data["spans"][0]["children"][0]["name"] == "inner"

    def test_format_report_mentions_everything(self, inst):
        inst.count("hits")
        with inst.span("outer"):
            pass
        text = inst.format_report()
        assert "outer" in text
        assert "hits" in text

    def test_empty_report(self, inst):
        assert "nothing recorded" in inst.format_report()


class TestModuleLevelApi:
    def test_enable_disable_roundtrip(self):
        assert not perf.enabled()
        perf.enable()
        try:
            perf.count("module.level")
            assert perf.get().counters["module.level"] == 1
            assert perf.enabled()
        finally:
            perf.disable()
            perf.reset()
        assert not perf.enabled()
        assert not perf.get().counters

    def test_disabled_module_calls_are_noops(self):
        perf.reset()
        perf.count("never")
        with perf.span("never"):
            with perf.timer("never"):
                pass
        report = perf.report()
        assert report["counters"] == {}
        assert report["timers"] == {}
        assert report["spans"] == []
