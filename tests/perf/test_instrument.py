"""Tests for the instrumentation subsystem (counters, timers, spans)."""

import json

import pytest

from repro import perf
from repro.perf import Instrumentation


@pytest.fixture()
def inst():
    return Instrumentation(enabled=True)


class TestCounters:
    def test_count_accumulates(self, inst):
        inst.count("a")
        inst.count("a", 2)
        inst.count("b")
        assert inst.counters["a"] == 3
        assert inst.counters["b"] == 1

    def test_disabled_counts_nothing(self):
        inst = Instrumentation(enabled=False)
        inst.count("a")
        assert not inst.counters

    def test_reset_clears(self, inst):
        inst.count("a")
        inst.reset()
        assert not inst.counters

    def test_labeled_counters_form_distinct_series(self, inst):
        inst.count("cache.hit", kind="partition")
        inst.count("cache.hit", kind="partition")
        inst.count("cache.hit", kind="groupby")
        inst.count("cache.hit")
        assert inst.counters["cache.hit{kind=partition}"] == 2
        assert inst.counters["cache.hit{kind=groupby}"] == 1
        assert inst.counters["cache.hit"] == 1

    def test_label_keys_are_sorted_into_one_series(self, inst):
        inst.count("c", b=2, a=1)
        inst.count("c", a=1, b=2)
        assert inst.counters == {"c{a=1,b=2}": 2}

    def test_series_key_round_trips(self):
        key = perf.series_key("cache.hit", {"kind": "partition", "aaa": "z"})
        assert key == "cache.hit{aaa=z,kind=partition}"
        name, labels = perf.split_series_key(key)
        assert name == "cache.hit"
        assert labels == {"aaa": "z", "kind": "partition"}
        assert perf.split_series_key("plain") == ("plain", {})


class TestGauges:
    def test_gauge_last_value_wins(self, inst):
        inst.gauge("result_size", 10)
        inst.gauge("result_size", 42)
        assert inst.gauges["result_size"] == 42

    def test_disabled_gauge_is_noop(self):
        inst = Instrumentation(enabled=False)
        inst.gauge("g", 1.0)
        assert not inst.gauges

    def test_labeled_gauges(self, inst):
        inst.gauge("depth", 3, technique="cost-based")
        assert inst.gauges["depth{technique=cost-based}"] == 3


class TestDurations:
    def test_span_and_timer_feed_histograms(self, inst):
        with inst.span("phase"):
            pass
        with inst.timer("load"):
            pass
        assert inst.durations["phase"].count == 1
        assert inst.durations["load"].count == 1

    def test_duration_summary_in_report(self, inst):
        for _ in range(4):
            with inst.span("phase"):
                pass
        summary = inst.report()["durations"]["phase"]
        assert summary["count"] == 4
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestTimers:
    def test_timer_accumulates_calls_and_seconds(self, inst):
        for _ in range(3):
            with inst.timer("phase"):
                pass
        calls, seconds = inst.timers["phase"]
        assert calls == 3
        assert seconds >= 0.0

    def test_disabled_timer_is_noop(self):
        inst = Instrumentation(enabled=False)
        with inst.timer("phase"):
            pass
        assert not inst.timers


class TestSpans:
    def test_nesting_builds_a_tree(self, inst):
        with inst.span("outer"):
            with inst.span("inner"):
                pass
            with inst.span("inner"):
                pass
        outer = inst.spans.children["outer"]
        assert outer.calls == 1
        inner = outer.children["inner"]
        assert inner.calls == 2
        assert outer.seconds >= inner.seconds

    def test_same_name_same_parent_aggregates(self, inst):
        for _ in range(5):
            with inst.span("repeated"):
                pass
        assert len(inst.spans.children) == 1
        assert inst.spans.children["repeated"].calls == 5

    def test_sibling_then_child_distinct_nodes(self, inst):
        with inst.span("a"):
            with inst.span("b"):
                pass
        with inst.span("b"):
            pass
        assert inst.spans.children["a"].children["b"].calls == 1
        assert inst.spans.children["b"].calls == 1

    def test_disabled_span_records_nothing(self):
        inst = Instrumentation(enabled=False)
        with inst.span("x"):
            pass
        assert not inst.spans.children

    def test_span_survives_exceptions(self, inst):
        with pytest.raises(RuntimeError):
            with inst.span("boom"):
                raise RuntimeError("boom")
        assert inst.spans.children["boom"].calls == 1
        # the current-span context is restored
        with inst.span("after"):
            pass
        assert "after" in inst.spans.children

    def test_reset_detaches_an_open_span(self, inst):
        span = inst.span("outer")
        span.__enter__()
        inst.reset()
        span.__exit__(None, None, None)
        # the discarded span neither records nor re-parents what follows
        assert not inst.spans.children
        with inst.span("fresh"):
            pass
        assert list(inst.spans.children) == ["fresh"]
        assert inst._current.get() is None

    def test_reset_inside_open_span_keeps_later_spans_at_root(self, inst):
        with inst.span("outer"):
            inst.reset()
            with inst.span("inner"):
                pass
        # "inner" lands at the root of the fresh tree, not under a stale node
        assert list(inst.spans.children) == ["inner"]


class TestReporting:
    def test_report_is_json_serializable(self, inst):
        inst.count("hits", 2)
        with inst.timer("phase"):
            pass
        with inst.span("outer"):
            with inst.span("inner"):
                pass
        data = json.loads(inst.to_json())
        assert data["counters"] == {"hits": 2}
        assert data["timers"]["phase"]["calls"] == 1
        assert data["spans"][0]["name"] == "outer"
        assert data["spans"][0]["children"][0]["name"] == "inner"

    def test_format_report_mentions_everything(self, inst):
        inst.count("hits")
        with inst.span("outer"):
            pass
        text = inst.format_report()
        assert "outer" in text
        assert "hits" in text

    def test_empty_report(self, inst):
        assert "nothing recorded" in inst.format_report()


class TestModuleLevelApi:
    def test_enable_disable_roundtrip(self):
        assert not perf.enabled()
        perf.enable()
        try:
            perf.count("module.level")
            assert perf.get().counters["module.level"] == 1
            assert perf.enabled()
        finally:
            perf.disable()
            perf.reset()
        assert not perf.enabled()
        assert not perf.get().counters

    def test_disabled_module_calls_are_noops(self):
        perf.reset()
        perf.count("never")
        with perf.span("never"):
            with perf.timer("never"):
                pass
        report = perf.report()
        assert report["counters"] == {}
        assert report["timers"] == {}
        assert report["spans"] == []
