"""Tests for the bounded-memory duration histogram."""

import pytest

from repro.perf import Histogram


class TestExactQuantiles:
    def test_known_inputs_give_exact_quantiles(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.50) == 50.0
        assert histogram.quantile(0.95) == 95.0
        assert histogram.quantile(0.99) == 99.0
        assert histogram.exact

    def test_single_observation(self):
        histogram = Histogram()
        histogram.observe(7.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == 7.0

    def test_extremes_are_true_min_and_max(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 3.0

    def test_order_independent(self):
        ascending, shuffled = Histogram(), Histogram()
        for value in range(1, 51):
            ascending.observe(float(value))
        for value in sorted(range(1, 51), key=lambda v: (v * 17) % 53):
            shuffled.observe(float(value))
        assert ascending.quantile(0.5) == shuffled.quantile(0.5)
        assert ascending.quantile(0.95) == shuffled.quantile(0.95)


class TestAggregates:
    def test_count_total_mean(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0}

    def test_summary_keys(self):
        histogram = Histogram()
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99", "exact"
        }


class TestDecimation:
    def test_memory_stays_bounded(self):
        histogram = Histogram(limit=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert len(histogram._samples) < 64
        assert not histogram.exact
        assert histogram.sample_stride > 1
        # aggregates still reflect every observation
        assert histogram.count == 10_000
        assert histogram.minimum == 0.0
        assert histogram.maximum == 9999.0

    def test_decimated_quantiles_stay_close(self):
        histogram = Histogram(limit=128)
        n = 50_000
        for value in range(n):
            histogram.observe(float(value))
        # systematic 1-in-stride sampling keeps quantiles within a few
        # percent of the true value on a uniform stream
        assert histogram.quantile(0.5) == pytest.approx(n / 2, rel=0.10)
        assert histogram.quantile(0.95) == pytest.approx(0.95 * n, rel=0.10)


class TestValidation:
    def test_quantile_out_of_range(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_quantile_of_empty_histogram(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_limit_too_small(self):
        with pytest.raises(ValueError):
            Histogram(limit=1)
