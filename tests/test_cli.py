"""Tests for the command-line interface."""

import json

import pytest

from repro import perf
from repro.cli import load_schema, main


@pytest.fixture(scope="module")
def data_and_workload(tmp_path_factory):
    """Small CSV + workload files generated through the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    data = root / "homes.csv"
    workload = root / "workload.sql"
    assert main(["generate-data", "--rows", "2000", "--out", str(data)]) == 0
    assert (
        main(["generate-workload", "--queries", "1500", "--out", str(workload)])
        == 0
    )
    return data, workload


class TestGenerate:
    def test_data_file_written(self, data_and_workload):
        data, _ = data_and_workload
        header = data.read_text().splitlines()[0]
        assert "neighborhood" in header and "price" in header

    def test_workload_file_written(self, data_and_workload):
        _, workload = data_and_workload
        first = workload.read_text().splitlines()[0]
        assert first.startswith("SELECT")


class TestStats:
    def test_prints_usage_table(self, data_and_workload, capsys):
        _, workload = data_and_workload
        assert main(["stats", "--workload", str(workload)]) == 0
        out = capsys.readouterr().out
        assert "AttributeUsageCounts" in out
        assert "neighborhood" in out
        assert "OccurrenceCounts" in out


class TestCategorize:
    QUERY = (
        "SELECT * FROM ListProperty WHERE neighborhood IN "
        "('Queen Anne, WA', 'Ballard, WA', 'Capitol Hill, WA', "
        "'Fremont, WA', 'West Seattle, WA')"
    )

    def test_cost_based_run(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", self.QUERY,
                "--depth", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALL [" in out
        assert "estimated CostAll" in out
        assert "technique=cost-based" in out

    @pytest.mark.parametrize("technique", ["attr-cost", "no-cost"])
    def test_baseline_techniques(self, data_and_workload, technique, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", self.QUERY,
                "--technique", technique,
                "--depth", "1",
            ]
        )
        assert code == 0
        assert f"technique={technique}" in capsys.readouterr().out

    def test_knobs_accepted(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", self.QUERY,
                "--m", "50", "--k", "0.5", "--x", "0.3", "--buckets", "4",
            ]
        )
        assert code == 0

    def test_bad_query_is_reported(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", "SELECT FROM nope nope",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_reported(self, data_and_workload, capsys):
        _, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", "/nonexistent.csv",
                "--workload", str(workload),
                "--query", self.QUERY,
            ]
        )
        assert code == 2


class TestExplain:
    def test_explain_prints_the_decision_trace(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", TestCategorize.QUERY,
                "--depth", "1",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CostAll" in out
        assert "CostOne" in out
        assert "<- chosen" in out

    def test_without_explain_no_trace_section(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--query", TestCategorize.QUERY,
                "--depth", "1",
            ]
        )
        assert code == 0
        assert "<- chosen" not in capsys.readouterr().out


class TestPerfReport:
    def _run(self, data, workload, *extra):
        return main(
            [
                "perf-report",
                "--data", str(data),
                "--workload", str(workload),
                "--query", TestCategorize.QUERY,
                *extra,
            ]
        )

    def test_text_report(self, data_and_workload, capsys):
        data, workload = data_and_workload
        assert self._run(data, workload) == 0
        out = capsys.readouterr().out
        assert "== perf report ==" in out
        assert "sql.queries_parsed" in out

    def test_prometheus_report(self, data_and_workload, capsys):
        data, workload = data_and_workload
        assert self._run(data, workload, "--format", "prometheus") == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sql_queries_parsed_total counter" in out
        assert "repro_categorize_result_size" in out

    def test_jsonl_report(self, data_and_workload, capsys):
        data, workload = data_and_workload
        assert self._run(data, workload, "--format", "jsonl") == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().split("\n")
        ]
        assert events[0]["type"] == "meta"
        assert any(e["type"] == "counter" for e in events)

    def test_sampling_flags(self, data_and_workload, capsys):
        data, workload = data_and_workload
        assert self._run(data, workload, "--sample-every", "10") == 0
        assert "sampling: every" in capsys.readouterr().out

    def test_global_registry_left_clean(self, data_and_workload):
        data, workload = data_and_workload
        assert self._run(data, workload) == 0
        assert not perf.enabled()
        assert not perf.get().counters
        assert perf.get().sampler.mode == "always"


class TestSchemaLoading:
    def test_default_schema(self):
        assert load_schema(None).name == "ListProperty"

    def test_custom_schema(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(
            json.dumps(
                {
                    "name": "Laptops",
                    "attributes": [
                        {"name": "brand", "type": "text", "kind": "categorical"},
                        {"name": "price", "type": "int"},
                    ],
                }
            )
        )
        schema = load_schema(path)
        assert schema.name == "Laptops"
        assert schema.attribute("brand").is_categorical
        assert schema.attribute("price").is_numeric

    def test_custom_schema_end_to_end(self, tmp_path, capsys):
        schema_path = tmp_path / "schema.json"
        schema_path.write_text(
            json.dumps(
                {
                    "name": "Laptops",
                    "attributes": [
                        {"name": "brand", "type": "text"},
                        {"name": "price", "type": "int"},
                    ],
                }
            )
        )
        data = tmp_path / "laptops.csv"
        lines = ["brand,price"]
        for i in range(60):
            lines.append(f"Brand{i % 3},{500 + 10 * i}")
        data.write_text("\n".join(lines) + "\n")
        workload = tmp_path / "searches.sql"
        workload.write_text(
            "\n".join(
                ["SELECT * FROM Laptops WHERE brand IN ('Brand0')"] * 4
                + ["SELECT * FROM Laptops WHERE price BETWEEN 500 AND 800"] * 6
            )
            + "\n"
        )
        code = main(
            [
                "categorize",
                "--data", str(data),
                "--workload", str(workload),
                "--schema", str(schema_path),
                "--query", "SELECT * FROM Laptops WHERE price BETWEEN 500 AND 1000",
                "--m", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALL [" in out


class TestServeAndRequest:
    @pytest.fixture(scope="class")
    def server(self, data_and_workload):
        """A live service over the CLI-generated files (free port)."""
        from repro.core.config import PAPER_CONFIG
        from repro.relational.csvio import read_csv
        from repro.serving.http import make_server, serve_in_thread
        from repro.serving.relation import Relation
        from repro.serving.service import CategorizationService
        from repro.workload.log import Workload
        from repro.workload.preprocess import preprocess_workload

        data, workload_path = data_and_workload
        schema = load_schema(None)
        table = read_csv(schema, data)
        workload = Workload.load(workload_path)
        statistics = preprocess_workload(
            workload, schema, PAPER_CONFIG.separation_intervals
        )
        service = CategorizationService(Relation(table, statistics), batch_size=4)
        server = make_server(service, port=0)
        serve_in_thread(server)
        yield server
        server.shutdown()
        server.server_close()

    @staticmethod
    def _base_url(server):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    def test_request_health(self, server, capsys):
        code = main(["request", "--url", self._base_url(server), "--health"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"

    def test_request_categorize(self, server, capsys):
        code = main(
            [
                "request",
                "--url", self._base_url(server),
                "--sql", "SELECT * FROM ListProperty WHERE price <= 300000",
                "--deadline-ms", "5000",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rung"] in ("full", "truncated", "single_level", "showtuples")
        assert payload["trace_id"].startswith("req-")

    def test_request_batch(self, server, capsys):
        code = main(
            [
                "request",
                "--url", self._base_url(server),
                "--batch",
                "SELECT * FROM ListProperty WHERE price <= 300000",
                "SELECT * FROM ListProperty WHERE bedroomcount = 3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert len(payload["results"]) == 2
        assert {r["epoch"] for r in payload["results"]} == {payload["epoch"]}

    def test_request_batch_bad_statement_exits_nonzero(self, server, capsys):
        code = main(
            [
                "request",
                "--url", self._base_url(server),
                "--batch",
                "SELECT * FROM ListProperty WHERE price <= 300000",
                "SELECT FROM WHERE",
            ]
        )
        assert code == 2
        assert "batch statement 1" in capsys.readouterr().err

    def test_request_record(self, server, capsys):
        code = main(
            [
                "request",
                "--url", self._base_url(server),
                "--sql", "SELECT * FROM ListProperty WHERE bedroomcount = 3",
                "--record",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["status"] == "recorded"

    def test_request_bad_sql_exits_nonzero(self, server, capsys):
        code = main(
            [
                "request",
                "--url", self._base_url(server),
                "--sql", "SELECT FROM WHERE",
            ]
        )
        assert code == 2
        # The wire error envelope is surfaced as "code: message".
        assert capsys.readouterr().err.startswith("SqlError: ")

    def test_request_without_sql_errors(self, capsys):
        assert main(["request"]) == 2
        assert "--sql" in capsys.readouterr().err

    def test_request_unreachable_server_errors(self, capsys):
        code = main(["request", "--url", "http://127.0.0.1:9", "--health"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_missing_data_reported(self, data_and_workload, capsys):
        _, workload = data_and_workload
        code = main(
            ["serve", "--data", "/nonexistent.csv", "--workload", str(workload)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRequestRepeatAndLoadgen:
    SQL = "SELECT * FROM ListProperty WHERE price <= 300000"

    @pytest.fixture(scope="class")
    def async_server(self, homes_table, statistics):
        """A live asyncio front end over the shared fixtures (free port)."""
        from repro.serving.aserve import start_in_thread
        from repro.serving.relation import Relation
        from repro.serving.service import CategorizationService

        service = CategorizationService(
            Relation(homes_table, statistics.copy()), batch_size=4
        )
        handle = start_in_thread(service, max_inflight=4)
        yield handle
        handle.stop()

    def test_request_health_against_async_server(self, async_server, capsys):
        code = main(["request", "--url", async_server.url, "--health"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["status"] == "ok"

    def test_repeat_prints_latency_summary(self, async_server, capsys):
        code = main(
            [
                "request",
                "--url", async_server.url,
                "--sql", self.SQL,
                "--repeat", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "5 requests" in out
        assert "one keep-alive connection" in out
        assert "p50" in out and "p99" in out
        assert "last response (200)" in out
        assert '"rung"' in out

    def test_repeat_must_be_positive(self, async_server, capsys):
        code = main(
            [
                "request",
                "--url", async_server.url,
                "--sql", self.SQL,
                "--repeat", "0",
            ]
        )
        assert code == 2
        assert "--repeat" in capsys.readouterr().err

    def test_repeat_with_failures_exits_nonzero(self, async_server, capsys):
        code = main(
            [
                "request",
                "--url", async_server.url,
                "--sql", "SELECT FROM WHERE",
                "--repeat", "3",
            ]
        )
        assert code == 2
        assert "3 failed" in capsys.readouterr().out

    def test_loadgen_table_report(self, async_server, capsys):
        code = main(
            [
                "loadgen",
                "--url", async_server.url,
                "--clients", "2",
                "--requests", "2",
                "--sql", self.SQL,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput req/s" in out
        assert "latency p99 ms" in out

    def test_loadgen_json_report(self, async_server, capsys):
        code = main(
            [
                "loadgen",
                "--url", async_server.url,
                "--clients", "2",
                "--requests", "3",
                "--sql", self.SQL,
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 6
        assert payload["responses"] == 6
        assert payload["errors"] == 0

    def test_loadgen_unreachable_server_exits_nonzero(self, capsys):
        code = main(
            [
                "loadgen",
                "--url", "http://127.0.0.1:9",
                "--clients", "1",
                "--requests", "1",
                "--timeout", "2",
            ]
        )
        assert code == 1

    def test_serve_async_flags_parse(self, data_and_workload, capsys):
        # The async flags must survive argument parsing; the bad data path
        # keeps the command from actually binding a port here.
        _, workload = data_and_workload
        code = main(
            [
                "serve",
                "--data", "/nonexistent.csv",
                "--workload", str(workload),
                "--async",
                "--max-inflight", "4",
                "--max-queue", "8",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_telemetry_flags_parse(self, data_and_workload, capsys):
        _, workload = data_and_workload
        code = main(
            [
                "serve",
                "--data", "/nonexistent.csv",
                "--workload", str(workload),
                "--telemetry-sink", "/tmp/events.jsonl",
                "--telemetry-sample", "0.25",
                "--telemetry-rotate-bytes", "4096",
                "--telemetry-fsync", "always",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPerfReportJson:
    def test_json_document(self, data_and_workload, capsys):
        data, workload = data_and_workload
        code = main(
            [
                "perf-report",
                "--data", str(data),
                "--workload", str(workload),
                "--query", TestCategorize.QUERY,
                "--format", "json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {
            "sampling", "counters", "gauges", "timers", "histograms", "spans"
        }
        assert any(c["name"] == "sql.queries_parsed" for c in document["counters"])


class TestAudit:
    @staticmethod
    def _write_sink(path, events):
        lines = [json.dumps({"type": "meta", "schema": "repro.telemetry.v1"})]
        lines += [json.dumps(e) for e in events]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def _sink(cls, path, complete=True):
        events = [
            {
                "type": "frontend", "trace_id": "req-000001",
                "route": "/categorize", "status": 200, "outcome": "ok",
                "queue_ms": 1.0, "compute_ms": 4.0, "respond_ms": 0.2,
            }
        ]
        if complete:
            events.append(
                {
                    "type": "service", "trace_id": "req-000001",
                    "table": "ListProperty", "technique": "greedy",
                    "rung": "full", "cached": False, "chosen": ["price"],
                }
            )
        cls._write_sink(path, events)
        return path

    def test_text_report(self, tmp_path, capsys):
        sink = self._sink(tmp_path / "events.jsonl")
        assert main(["audit", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "Reconstruction" in out
        assert "Latency waterfall" in out

    def test_json_report_and_diff(self, tmp_path, capsys):
        sink = self._sink(tmp_path / "events.jsonl")
        baseline = self._sink(tmp_path / "baseline.jsonl")
        code = main(
            ["audit", str(sink), "--format", "json", "--diff", str(baseline)]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["report"]["requests"] == 1
        assert document["report"]["partial"] == 0
        assert document["diff"]["requests"] == {"current": 1, "baseline": 1}

    def test_strict_fails_on_partial_traces(self, tmp_path, capsys):
        sink = self._sink(tmp_path / "events.jsonl", complete=False)
        assert main(["audit", str(sink)]) == 0  # lax: report only
        assert main(["audit", str(sink), "--strict"]) == 1
        err = capsys.readouterr().err
        assert "strict: 1 partial trace(s)" in err

    def test_missing_sink_file_is_reported(self, tmp_path, capsys):
        code = main(["audit", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
