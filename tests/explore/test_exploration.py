"""Tests for synthetic exploration replay (Section 6.2) on a hand-built tree."""

import pytest

from repro.core.labels import CategoricalLabel, NumericLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.explore.exploration import relevant_count, replay_all, replay_one
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.workload.model import WorkloadQuery


@pytest.fixture
def tree():
    """ALL(8) -> city {a(4), b(4)}; each city -> price {low(2), high(2)}."""
    schema = TableSchema(
        "T", (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT))
    )
    table = Table(schema)
    for city in ("a", "b"):
        for price in (100, 150, 300, 350):
            table.insert({"city": city, "price": price})
    root = CategoryNode(table.all_rows())
    city_parts = table.all_rows().partition_by(lambda r: r["city"])
    children = root.add_children(
        "city",
        [
            (CategoricalLabel("city", ("a",)), city_parts["a"]),
            (CategoricalLabel("city", ("b",)), city_parts["b"]),
        ],
    )
    for node in children:
        low = node.rows.select(NumericLabel("price", 0, 200).to_predicate())
        high = node.rows.select(
            NumericLabel("price", 200, 400, high_inclusive=True).to_predicate()
        )
        node.add_children(
            "price",
            [
                (NumericLabel("price", 0, 200), low),
                (NumericLabel("price", 200, 400, high_inclusive=True), high),
            ],
        )
    return CategoryTree(root, technique="test")


def w(sql: str) -> WorkloadQuery:
    return WorkloadQuery.from_sql(sql)


class TestReplayAll:
    def test_fully_constrained_exploration(self, tree):
        # W: city a, price <= 150.  SHOWCAT at root (city constrained),
        # 2 labels; drill 'a'; SHOWCAT (price constrained), 2 labels;
        # drill low bucket; leaf -> 2 tuples.  Total 4 labels + 2 tuples.
        result = replay_all(tree, w("SELECT * FROM T WHERE city IN ('a') AND price <= 150"))
        assert result.labels_examined == 4
        assert result.tuples_examined == 2
        assert result.items_examined == 6.0

    def test_unconstrained_attribute_forces_showtuples(self, tree):
        # W constrains only city: at node 'a' the user browses all 4 tuples.
        result = replay_all(tree, w("SELECT * FROM T WHERE city IN ('a')"))
        assert result.labels_examined == 2
        assert result.tuples_examined == 4

    def test_no_city_condition_showtuples_at_root(self, tree):
        result = replay_all(tree, w("SELECT * FROM T WHERE price <= 150"))
        assert result.labels_examined == 0
        assert result.tuples_examined == 8

    def test_multiple_overlapping_branches(self, tree):
        # Both cities drilled; price spans both buckets under each.
        result = replay_all(
            tree, w("SELECT * FROM T WHERE city IN ('a', 'b') AND price BETWEEN 150 AND 300")
        )
        assert result.labels_examined == 2 + 2 + 2
        assert result.tuples_examined == 8  # all four leaf buckets

    def test_label_cost_weighting(self, tree):
        result = replay_all(
            tree, w("SELECT * FROM T WHERE city IN ('a') AND price <= 150"),
            label_cost=0.5,
        )
        assert result.items_examined == 0.5 * 4 + 2


class TestReplayOne:
    def test_stops_at_first_relevant_tuple(self, tree):
        # Drill city 'a' (1 label examined — 'a' is first), price low bucket
        # (1 label), scan until first tuple <= 150: the first tuple matches.
        result = replay_one(tree, w("SELECT * FROM T WHERE city IN ('a') AND price <= 150"))
        assert result.found_relevant
        assert result.tuples_examined == 1
        assert result.labels_examined == 2

    def test_second_sibling_costs_more_labels(self, tree):
        result = replay_one(tree, w("SELECT * FROM T WHERE city IN ('b') AND price <= 150"))
        # Examines 'a' label (not overlapping), then 'b' (overlap) -> 2, then
        # price low label -> 1.
        assert result.labels_examined == 3
        assert result.found_relevant

    def test_showtuples_scan_stops_early(self, tree):
        # Only city constrained: browse tuples of 'a' until first match.
        result = replay_one(tree, w("SELECT * FROM T WHERE city IN ('a')"))
        assert result.tuples_examined == 1

    def test_not_found_scans_everything_reachable(self, tree):
        result = replay_one(tree, w("SELECT * FROM T WHERE city IN ('a') AND price >= 400"))
        assert not result.found_relevant
        # Drilled the high bucket (overlaps at 400) but no tuple matches.
        assert result.tuples_examined == 2

    def test_one_cost_never_exceeds_all_cost(self, tree):
        for sql in (
            "SELECT * FROM T WHERE city IN ('a') AND price <= 150",
            "SELECT * FROM T WHERE city IN ('a', 'b')",
            "SELECT * FROM T WHERE price BETWEEN 100 AND 350",
        ):
            one = replay_one(tree, w(sql))
            all_ = replay_all(tree, w(sql))
            assert one.items_examined <= all_.items_examined


class TestRelevantCount:
    def test_counts_matching_tuples(self, tree):
        assert relevant_count(tree, w("SELECT * FROM T WHERE city IN ('a')")) == 4
        assert relevant_count(
            tree, w("SELECT * FROM T WHERE city IN ('a') AND price <= 150")
        ) == 2
        assert relevant_count(tree, w("SELECT * FROM T WHERE price >= 1000")) == 0
