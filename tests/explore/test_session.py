"""Tests for exploration session recording."""

from repro.explore.session import ExplorationSession, Operation


class TestAccounting:
    def test_items_examined_combines_labels_and_tuples(self):
        session = ExplorationSession(label_cost=1.0)
        session.examine_label("c1")
        session.examine_label("c2")
        session.examine_tuple(relevant=False)
        assert session.items_examined == 3.0

    def test_label_cost_k_weights_labels(self):
        session = ExplorationSession(label_cost=0.5)
        session.examine_label("c1")
        session.examine_tuple(relevant=False)
        assert session.items_examined == 1.5

    def test_relevant_found_counted(self):
        session = ExplorationSession()
        session.examine_tuple(relevant=True)
        session.examine_tuple(relevant=False)
        session.examine_tuple(relevant=True)
        assert session.relevant_found == 2
        assert session.tuples_examined == 3


class TestEventLog:
    def test_operations_logged_in_order(self):
        session = ExplorationSession()
        session.expand("root")
        session.examine_label("c1")
        session.ignore("c1")
        session.examine_label("c2")
        session.show_tuples("c2")
        session.examine_tuple(relevant=True)
        ops = [e.operation for e in session.events]
        assert ops == [
            Operation.EXPAND,
            Operation.EXAMINE_LABEL,
            Operation.IGNORE,
            Operation.EXAMINE_LABEL,
            Operation.SHOW_TUPLES,
            Operation.EXAMINE_TUPLE,
            Operation.MARK_RELEVANT,
        ]

    def test_relevant_click_recorded_with_detail(self):
        session = ExplorationSession()
        session.examine_tuple(relevant=True, detail=42)
        marks = [e for e in session.events if e.operation is Operation.MARK_RELEVANT]
        assert marks[0].detail == 42

    def test_give_up_flag(self):
        session = ExplorationSession()
        assert not session.exhausted_patience
        session.give_up()
        assert session.exhausted_patience
