"""Tests for the simulated user model."""

import random

import pytest

from repro.core.labels import CategoricalLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.explore.user import SimulatedUser, UserBehavior, derive_preference
from repro.relational.expressions import Conjunction, InPredicate, RangePredicate
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.workload.model import WorkloadQuery


@pytest.fixture
def tree():
    schema = TableSchema(
        "T", (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT))
    )
    table = Table(schema)
    for city in ("a", "b", "c"):
        for price in (100, 200, 300, 400):
            table.insert({"city": city, "price": price})
    root = CategoryNode(table.all_rows())
    parts = table.all_rows().partition_by(lambda r: r["city"])
    root.add_children(
        "city",
        [(CategoricalLabel("city", (c,)), parts[c]) for c in ("a", "b", "c")],
    )
    return CategoryTree(root, technique="test")


def preference(sql="SELECT * FROM T WHERE city IN ('b') AND price <= 200"):
    return WorkloadQuery.from_sql(sql)


def perfect_behavior(patience=10_000):
    return UserBehavior(
        sensitivity=1.0, label_error=0.0, recognition=1.0, patience=patience
    )


class TestBehaviorValidation:
    def test_probability_fields_validated(self):
        with pytest.raises(ValueError):
            UserBehavior(sensitivity=1.5)
        with pytest.raises(ValueError):
            UserBehavior(label_error=-0.1)

    def test_patience_validated(self):
        with pytest.raises(ValueError):
            UserBehavior(patience=0)


class TestRelevance:
    def test_is_relevant(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        assert user.is_relevant({"city": "b", "price": 150})
        assert not user.is_relevant({"city": "a", "price": 150})

    def test_relevant_in_tree(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        assert user.relevant_in(tree) == 2  # b @ 100, 200


class TestExploreAll:
    def test_perfect_user_finds_everything(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        session = user.explore_all(tree)
        assert session.relevant_found == 2
        assert not session.exhausted_patience

    def test_perfect_user_ignores_irrelevant_categories(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        session = user.explore_all(tree)
        # Examines 3 labels, drills only 'b' (4 tuples).
        assert session.labels_examined == 3
        assert session.tuples_examined == 4

    def test_patience_exhaustion_limits_findings(self, tree):
        impatient = UserBehavior(
            sensitivity=1.0, label_error=0.0, recognition=1.0, patience=4
        )
        user = SimulatedUser("U1", preference(), impatient)
        session = user.explore_all(tree)
        assert session.exhausted_patience
        assert session.items_examined <= 5  # stops right after the limit

    def test_insensitive_user_browses_tuples(self, tree):
        browser = UserBehavior(
            sensitivity=0.0, label_error=0.0, recognition=1.0, patience=10_000
        )
        user = SimulatedUser("U1", preference(), browser)
        session = user.explore_all(tree)
        # SHOWTUPLES at root: all 12 tuples, no labels.
        assert session.tuples_examined == 12
        assert session.labels_examined == 0

    def test_deterministic_given_seed(self, tree):
        behavior = UserBehavior(sensitivity=0.7, label_error=0.1, recognition=0.9)
        a = SimulatedUser("U1", preference(), behavior, seed=5).explore_all(tree)
        b = SimulatedUser("U1", preference(), behavior, seed=5).explore_all(tree)
        assert a.items_examined == b.items_examined
        assert a.relevant_found == b.relevant_found

    def test_imperfect_recognition_misses_tuples(self, tree):
        blind = UserBehavior(
            sensitivity=1.0, label_error=0.0, recognition=0.0, patience=10_000
        )
        user = SimulatedUser("U1", preference(), blind)
        assert user.explore_all(tree).relevant_found == 0


class TestExploreOne:
    def test_stops_at_first_relevant(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        session = user.explore_one(tree)
        assert session.relevant_found == 1

    def test_one_never_costs_more_than_all(self, tree):
        user = SimulatedUser("U1", preference(), perfect_behavior())
        one = user.explore_one(tree)
        all_ = user.explore_all(tree)
        assert one.items_examined <= all_.items_examined


class TestDerivePreference:
    def make_task(self):
        return SelectQuery(
            "ListProperty",
            Conjunction(
                [
                    InPredicate("neighborhood", ("A, WA", "B, WA", "C, WA", "D, WA")),
                    RangePredicate("price", 200_000, 600_000),
                ]
            ),
        )

    def test_preference_narrows_neighborhoods(self):
        pref = derive_preference(self.make_task(), random.Random(1))
        hoods = pref.in_values("neighborhood")
        assert hoods is not None
        assert hoods <= {"A, WA", "B, WA", "C, WA", "D, WA"}
        assert 1 <= len(hoods) <= 3

    def test_preference_price_inside_task_band_when_present(self):
        saw_price = 0
        for seed in range(30):
            pref = derive_preference(self.make_task(), random.Random(seed))
            bounds = pref.range_bounds("price")
            if bounds is None:
                continue  # ~40% of subjects are price-indifferent
            saw_price += 1
            low, high = bounds
            assert 200_000 <= low <= high <= 600_000
        assert 10 <= saw_price <= 25  # inclusion rate tracks workload usage

    def test_preference_deterministic(self):
        a = derive_preference(self.make_task(), random.Random(3))
        b = derive_preference(self.make_task(), random.Random(3))
        assert str(a) == str(b)

    def test_different_seeds_differ(self):
        prefs = {
            str(derive_preference(self.make_task(), random.Random(seed)))
            for seed in range(8)
        }
        assert len(prefs) > 1
