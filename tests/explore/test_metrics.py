"""Tests for derived exploration metrics."""

import math

from repro.explore.metrics import fractional_cost, mean, mean_finite, normalized_cost


class TestFractionalCost:
    def test_basic(self):
        assert fractional_cost(50, 200) == 0.25

    def test_zero_result_is_zero(self):
        assert fractional_cost(50, 0) == 0.0

    def test_can_exceed_one(self):
        # Labels examined can push cost past the result size.
        assert fractional_cost(300, 200) == 1.5


class TestNormalizedCost:
    def test_basic(self):
        assert normalized_cost(50, 10) == 5.0

    def test_nothing_found_is_infinite(self):
        assert math.isinf(normalized_cost(50, 0))


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_nan(self):
        assert math.isnan(mean([]))

    def test_mean_finite_drops_inf(self):
        assert mean_finite([1.0, math.inf, 3.0]) == 2.0

    def test_mean_finite_all_inf_is_nan(self):
        assert math.isnan(mean_finite([math.inf]))

    def test_mean_accepts_generator(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0
