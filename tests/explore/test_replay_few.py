"""Tests for the FEW-scenario replay and its analytic interpolation."""

import pytest

from repro.core.labels import CategoricalLabel, NumericLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.explore.exploration import (
    relevant_count,
    replay_all,
    replay_few,
    replay_one,
)
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.workload.model import WorkloadQuery


@pytest.fixture
def tree():
    schema = TableSchema(
        "T", (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT))
    )
    table = Table(schema)
    for city in ("a", "b"):
        for price in (100, 150, 200, 250, 300, 350):
            table.insert({"city": city, "price": price})
    root = CategoryNode(table.all_rows())
    parts = table.all_rows().partition_by(lambda r: r["city"])
    children = root.add_children(
        "city",
        [
            (CategoricalLabel("city", ("a",)), parts["a"]),
            (CategoricalLabel("city", ("b",)), parts["b"]),
        ],
    )
    for node in children:
        low_label = NumericLabel("price", 0, 225)
        high_label = NumericLabel("price", 225, 400, high_inclusive=True)
        node.add_children(
            "price",
            [
                (low_label, node.rows.select(low_label.to_predicate())),
                (high_label, node.rows.select(high_label.to_predicate())),
            ],
        )
    return CategoryTree(root, technique="test")


def w(sql):
    return WorkloadQuery.from_sql(sql)


QUERY = "SELECT * FROM T WHERE city IN ('a') AND price BETWEEN 100 AND 300"


class TestReplayFew:
    def test_k1_equals_replay_one(self, tree):
        few = replay_few(tree, w(QUERY), k=1)
        one = replay_one(tree, w(QUERY))
        assert few.items_examined == one.items_examined
        assert few.relevant_found == 1

    def test_large_k_equals_replay_all(self, tree):
        total = relevant_count(tree, w(QUERY))
        few = replay_few(tree, w(QUERY), k=total + 100)
        all_ = replay_all(tree, w(QUERY))
        assert few.items_examined == all_.items_examined
        assert few.relevant_found == total

    def test_monotone_in_k(self, tree):
        costs = [
            replay_few(tree, w(QUERY), k=k).items_examined for k in range(1, 8)
        ]
        assert costs == sorted(costs)

    def test_counts_relevant_exactly_k_when_available(self, tree):
        few = replay_few(tree, w(QUERY), k=3)
        assert few.relevant_found == 3
        assert few.found_relevant

    def test_exhausts_when_not_enough_relevant(self, tree):
        query = "SELECT * FROM T WHERE city IN ('a') AND price BETWEEN 100 AND 120"
        few = replay_few(tree, w(query), k=5)
        assert few.relevant_found == relevant_count(tree, w(query)) == 1

    def test_invalid_k_rejected(self, tree):
        with pytest.raises(ValueError):
            replay_few(tree, w(QUERY), k=0)

    def test_label_cost_applied(self, tree):
        cheap = replay_few(tree, w(QUERY), k=2, label_cost=0.25)
        plain = replay_few(tree, w(QUERY), k=2, label_cost=1.0)
        assert cheap.items_examined < plain.items_examined
        assert cheap.labels_examined == plain.labels_examined


class TestCostFewModel:
    @pytest.fixture
    def model_and_tree(self, statistics):
        from repro.core.config import PAPER_CONFIG
        from repro.core.cost import CostModel
        from repro.core.probability import ProbabilityEstimator

        model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
        return model

    def test_k1_equals_cost_one(self, tree, model_and_tree):
        model = model_and_tree
        assert model.cost_few(tree.root, 1) == pytest.approx(
            model.cost_one(tree.root)
        )

    def test_limit_is_cost_all(self, tree, model_and_tree):
        model = model_and_tree
        assert model.cost_few(tree.root, 10_000) == pytest.approx(
            model.cost_all(tree.root), rel=1e-3
        )

    def test_monotone_in_k(self, tree, model_and_tree):
        model = model_and_tree
        costs = [model.cost_few(tree.root, k) for k in (1, 2, 3, 5, 10)]
        assert costs == sorted(costs)

    def test_bounded_by_endpoints(self, tree, model_and_tree):
        model = model_and_tree
        one = model.cost_one(tree.root)
        all_ = model.cost_all(tree.root)
        for k in (2, 3, 7):
            assert one <= model.cost_few(tree.root, k) <= all_ + 1e-9

    def test_invalid_k_rejected(self, tree, model_and_tree):
        with pytest.raises(ValueError):
            model_and_tree.cost_few(tree.root, 0)

    def test_tree_wrapper(self, tree, model_and_tree):
        model = model_and_tree
        assert model.tree_cost_few(tree, 3) == pytest.approx(
            model.cost_few(tree.root, 3)
        )
