"""Tests for study-result persistence and regression comparison."""

import math

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.study.persistence import (
    MetricDrift,
    compare_to_baseline,
    load_simulated_result,
    load_userstudy_result,
    save_simulated_result,
    save_userstudy_result,
    simulated_summary,
)
from repro.study.simulated import run_simulated_study
from repro.study.userstudy import run_user_study


@pytest.fixture(scope="module")
def small_simulated(request):
    table = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")
    return run_simulated_study(
        table, workload, [CostBasedCategorizer], subset_count=2, subset_size=6,
        seed=3,
    )


@pytest.fixture(scope="module")
def small_userstudy(request):
    table = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")
    return run_user_study(
        table, workload, [CostBasedCategorizer], subject_count=3, seed=3
    )


class TestSimulatedRoundTrip:
    def test_records_preserved(self, small_simulated, tmp_path):
        path = tmp_path / "sim.json"
        save_simulated_result(small_simulated, path)
        loaded = load_simulated_result(path)
        assert loaded.subset_count == small_simulated.subset_count
        assert loaded.records == small_simulated.records

    def test_derived_metrics_preserved(self, small_simulated, tmp_path):
        path = tmp_path / "sim.json"
        save_simulated_result(small_simulated, path)
        loaded = load_simulated_result(path)
        assert loaded.overall_correlation() == pytest.approx(
            small_simulated.overall_correlation(), nan_ok=True
        )
        assert loaded.trend_slope() == pytest.approx(small_simulated.trend_slope())

    def test_wrong_kind_rejected(self, small_userstudy, tmp_path):
        path = tmp_path / "user.json"
        save_userstudy_result(small_userstudy, path)
        with pytest.raises(ValueError, match="not a simulated study"):
            load_simulated_result(path)


class TestUserStudyRoundTrip:
    def test_records_preserved(self, small_userstudy, tmp_path):
        path = tmp_path / "user.json"
        save_userstudy_result(small_userstudy, path)
        loaded = load_userstudy_result(path)
        assert loaded.user_ids == small_userstudy.user_ids
        assert loaded.records == small_userstudy.records

    def test_survey_preserved(self, small_userstudy, tmp_path):
        path = tmp_path / "user.json"
        save_userstudy_result(small_userstudy, path)
        assert load_userstudy_result(path).survey() == small_userstudy.survey()

    def test_wrong_kind_rejected(self, small_simulated, tmp_path):
        path = tmp_path / "sim.json"
        save_simulated_result(small_simulated, path)
        with pytest.raises(ValueError, match="not a user study"):
            load_userstudy_result(path)


class TestRegressionComparison:
    def test_identical_summaries_have_no_drift(self, small_simulated):
        summary = simulated_summary(small_simulated)
        assert compare_to_baseline(summary, dict(summary)) == []

    def test_drift_detected(self):
        baseline = {"a": 1.0, "b": 10.0}
        measured = {"a": 1.05, "b": 13.0}
        drifted = compare_to_baseline(baseline, measured, tolerance=0.10)
        assert [d.metric for d in drifted] == ["b"]
        assert drifted[0].relative_change == pytest.approx(0.30)

    def test_missing_metric_always_drifts(self):
        drifted = compare_to_baseline({"a": 1.0}, {}, tolerance=0.5)
        assert [d.metric for d in drifted] == ["a"]
        assert math.isnan(drifted[0].measured)

    def test_new_metric_always_drifts(self):
        drifted = compare_to_baseline({}, {"new": 2.0})
        assert [d.metric for d in drifted] == ["new"]

    def test_zero_baseline(self):
        (drift,) = compare_to_baseline({"a": 0.0}, {"a": 0.5})
        assert math.isinf(drift.relative_change)
        assert compare_to_baseline({"a": 0.0}, {"a": 0.0}) == []

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline({}, {}, tolerance=0.0)

    def test_summary_has_expected_metrics(self, small_simulated):
        summary = simulated_summary(small_simulated)
        assert "overall_correlation" in summary
        assert "trend_slope" in summary
        assert "fraction_examined[cost-based]" in summary
