"""Tests for the simulated real-life user study (small scale)."""

import math

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.study.userstudy import paper_tasks, run_user_study


@pytest.fixture(scope="module")
def study(request):
    table = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")
    return run_user_study(
        table,
        workload,
        [CostBasedCategorizer, AttrCostCategorizer, NoCostCategorizer],
        subject_count=6,
        seed=11,
    )


class TestTasks:
    def test_four_paper_tasks(self):
        tasks = paper_tasks()
        assert len(tasks) == 4

    def test_task3_selects_fifteen_neighborhoods(self):
        tasks = paper_tasks()
        assert len(tasks[2].values_on("neighborhood")) == 15

    def test_task4_constrains_bedrooms(self):
        tasks = paper_tasks()
        assert tasks[3].range_on("bedroomcount") == (3.0, 4.0)


class TestAssignment:
    def test_every_subject_does_every_task_once(self, study):
        for user_id in study.user_ids:
            tasks = [s.task for s in study.for_user(user_id)]
            assert sorted(tasks) == [0, 1, 2, 3]

    def test_techniques_vary_within_subject(self, study):
        for user_id in study.user_ids:
            techniques = {s.technique for s in study.for_user(user_id)}
            assert len(techniques) == 3

    def test_every_cell_has_two_or_more_subjects(self, study):
        for task in range(4):
            for technique in study.techniques():
                assert len(study.cell(task, technique)) >= 2


class TestMeasurements:
    def test_items_positive(self, study):
        for record in study.records:
            assert record.items_all > 0
            assert record.items_one > 0

    def test_one_scenario_cheaper_in_aggregate(self, study):
        # Per-session the two scenarios use independent random draws, so the
        # ordering only holds in aggregate over sessions that found something.
        productive = [r for r in study.records if r.relevant_found > 0]
        assert productive
        mean_one = sum(r.items_one for r in productive) / len(productive)
        mean_all = sum(r.items_all for r in productive) / len(productive)
        assert mean_one <= mean_all

    def test_relevant_found_bounded_by_total(self, study):
        for record in study.records:
            assert 0 <= record.relevant_found <= record.relevant_total

    def test_normalized_cost_definition(self, study):
        record = next(r for r in study.records if r.relevant_found > 0)
        assert record.normalized_cost == pytest.approx(
            record.items_all / record.relevant_found
        )


class TestDerivedTables:
    def test_correlation_table_rows(self, study):
        table = study.correlation_table()
        assert len(table) == len(study.user_ids) + 1
        assert table[-1][0] == "average"

    def test_figure_series_shapes(self, study):
        for metric in ("cost_all", "relevant_found", "normalized_cost", "cost_one"):
            series = study.figure_series(metric)
            assert set(series) == set(study.techniques())
            assert all(len(v) == 4 for v in series.values())

    def test_vs_no_categorization_rows(self, study):
        rows = study.vs_no_categorization()
        assert len(rows) == 4
        for task, normalized, result_size in rows:
            assert 1 <= task <= 4
            assert result_size > 0
            assert normalized < result_size  # categorization must help

    def test_survey_votes_sum_to_subjects(self, study):
        votes = study.survey()
        assert sum(votes.values()) == len(study.user_ids)

    def test_deterministic(self, homes_table, workload):
        kwargs = dict(subject_count=3, seed=4)
        a = run_user_study(homes_table, workload, [CostBasedCategorizer], **kwargs)
        b = run_user_study(homes_table, workload, [CostBasedCategorizer], **kwargs)
        assert [r.items_all for r in a.records] == [r.items_all for r in b.records]

    def test_requires_techniques(self, homes_table, workload):
        with pytest.raises(ValueError):
            run_user_study(homes_table, workload, [])
