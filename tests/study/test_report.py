"""Tests for table/series text rendering."""

import math

from repro.study.report import format_series, format_table


class TestFormatTable:
    def test_headers_and_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [["1"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        text = format_table(["r"], [[0.123456]])
        assert "0.1235" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["r"], [[math.nan]])
        assert "-" in text.splitlines()[-1]

    def test_inf_rendered(self):
        text = format_table(["r"], [[math.inf]])
        assert "inf" in text


class TestFormatSeries:
    def test_one_row_per_x_label(self):
        series = {"a": [1.0, 2.0], "b": [3.0, 4.0]}
        text = format_series(series, ["Task 1", "Task 2"])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "Task 1" in lines[2]

    def test_missing_values_dashed(self):
        series = {"a": [1.0]}
        text = format_series(series, ["x1", "x2"])
        assert text.splitlines()[-1].strip().endswith("-")

    def test_custom_value_format(self):
        series = {"a": [0.5]}
        text = format_series(series, ["x"], value_format="{:.0%}")
        assert "50%" in text
