"""Tests for Pearson correlation and the zero-intercept fit."""

import math

import pytest

from repro.study.stats import classify_correlation, pearson, slope_through_origin


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_uncorrelated_symmetric(self):
        r = pearson([1, 2, 3, 4], [1, -1, -1, 1])
        assert abs(r) < 1e-9

    def test_translation_invariant(self):
        xs, ys = [1, 5, 3, 8], [2, 9, 4, 11]
        assert pearson(xs, ys) == pytest.approx(
            pearson([x + 100 for x in xs], [y - 50 for y in ys])
        )

    def test_constant_series_is_nan(self):
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_short_series_is_nan(self):
        assert math.isnan(pearson([1], [2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])


class TestSlopeThroughOrigin:
    def test_exact_proportionality(self):
        assert slope_through_origin([1, 2, 4], [2, 4, 8]) == pytest.approx(2.0)

    def test_least_squares_value(self):
        # Closed form: sum(xy)/sum(x^2) = (1*2 + 2*2)/(1+4) = 1.2
        assert slope_through_origin([1, 2], [2, 2]) == pytest.approx(1.2)

    def test_all_zero_x_rejected(self):
        with pytest.raises(ValueError):
            slope_through_origin([0, 0], [1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            slope_through_origin([1], [1, 2])


class TestClassification:
    @pytest.mark.parametrize(
        "r,expected",
        [
            (0.9, "strong positive"),
            (0.6, "strong positive"),
            (0.4, "weak positive"),
            (0.0, "negligible"),
            (-0.5, "negative"),
            (math.nan, "undefined"),
        ],
    )
    def test_bands(self, r, expected):
        assert classify_correlation(r) == expected


class TestBootstrapCI:
    def test_contains_sample_mean(self):
        from repro.study.stats import bootstrap_mean_ci

        values = [3.0, 5.0, 7.0, 9.0, 11.0, 4.0, 6.0]
        low, high = bootstrap_mean_ci(values, seed=1)
        mean = sum(values) / len(values)
        assert low <= mean <= high

    def test_deterministic_under_seed(self):
        from repro.study.stats import bootstrap_mean_ci

        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(values, seed=2) == bootstrap_mean_ci(values, seed=2)

    def test_wider_at_higher_confidence(self):
        from repro.study.stats import bootstrap_mean_ci

        values = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0]
        low95, high95 = bootstrap_mean_ci(values, confidence=0.95, seed=3)
        low50, high50 = bootstrap_mean_ci(values, confidence=0.50, seed=3)
        assert (high95 - low95) >= (high50 - low50)

    def test_constant_sample_degenerates(self):
        from repro.study.stats import bootstrap_mean_ci

        low, high = bootstrap_mean_ci([5.0] * 10, seed=4)
        assert low == high == 5.0

    def test_empty_rejected(self):
        import pytest
        from repro.study.stats import bootstrap_mean_ci

        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_bad_confidence_rejected(self):
        import pytest
        from repro.study.stats import bootstrap_mean_ci

        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.0)
