"""Tests for the cross-validated simulated study harness (small scale)."""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import NoCostCategorizer
from repro.study.simulated import run_simulated_study


@pytest.fixture(scope="module")
def study(request):
    table = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")
    return run_simulated_study(
        table,
        workload,
        [CostBasedCategorizer, NoCostCategorizer],
        subset_count=2,
        subset_size=10,
        seed=5,
    )


class TestStructure:
    def test_primary_technique_is_first_factory(self, study):
        assert study.primary_technique == "cost-based"

    def test_techniques_listed_primary_first(self, study):
        assert study.techniques()[0] == "cost-based"
        assert set(study.techniques()) == {"cost-based", "no-cost"}

    def test_records_cover_both_techniques_equally(self, study):
        assert len(study.for_technique("cost-based")) == len(
            study.for_technique("no-cost")
        )

    def test_subset_partitioning(self, study):
        total = sum(
            len(study.for_subset(s, "cost-based")) for s in range(2)
        )
        assert total == len(study.for_technique("cost-based"))

    def test_explorations_filtered_to_eligible(self, study):
        # With the default filter, every record came from a broadened query
        # over at least M tuples.
        assert all(r.result_size >= 20 for r in study.records)


class TestMeasurements:
    def test_costs_positive(self, study):
        for record in study.records:
            assert record.estimated_cost > 0
            assert record.actual_cost > 0

    def test_fractional_cost_definition(self, study):
        record = study.records[0]
        assert record.fractional_cost == pytest.approx(
            record.actual_cost / record.result_size
        )

    def test_scatter_aligned(self, study):
        est, act = study.scatter()
        assert len(est) == len(act) == len(study.for_technique("cost-based"))

    def test_correlation_table_has_all_row(self, study):
        table = study.correlation_table()
        assert table[-1][0] == "All"
        assert len(table) == 3

    def test_trend_slope_positive(self, study):
        assert study.trend_slope() > 0

    def test_fraction_examined_series_shape(self, study):
        series = study.fraction_examined_series()
        assert set(series) == {"cost-based", "no-cost"}
        assert all(len(v) == 2 for v in series.values())

    def test_cost_based_fraction_below_one(self, study):
        assert study.mean_fraction_examined("cost-based") < 1.0


class TestValidationErrors:
    def test_requires_techniques(self, homes_table, workload):
        with pytest.raises(ValueError, match="at least one"):
            run_simulated_study(homes_table, workload, [])

    def test_custom_eligibility(self, homes_table, workload):
        result = run_simulated_study(
            homes_table,
            workload,
            [CostBasedCategorizer],
            subset_count=1,
            subset_size=5,
            eligible=lambda q: q.constrains("neighborhood")
            and q.constrains("price"),
        )
        assert len(result.records) <= 5
