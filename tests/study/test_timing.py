"""Tests for the execution-time study (Figure 13 harness)."""

import pytest

from repro.study.timing import run_timing_study


@pytest.fixture(scope="module")
def points(request):
    table = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")
    return run_timing_study(
        table, workload, m_values=(10, 50), query_count=8, seed=2
    )


class TestTiming:
    def test_one_point_per_m(self, points):
        assert [p.m for p in points] == [10, 50]

    def test_times_positive(self, points):
        assert all(p.mean_seconds > 0 for p in points)

    def test_queries_timed_recorded(self, points):
        assert all(0 < p.queries_timed <= 8 for p in points)
        assert points[0].queries_timed == points[1].queries_timed

    def test_mean_result_size_positive(self, points):
        assert all(p.mean_result_size > 0 for p in points)
