"""Tests for incremental count-table maintenance (streaming log updates)."""

import pytest

from repro.data.homes import list_property_schema
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload


BASE_SQL = [
    "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')",
    "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000",
]

NEW_SQL = [
    "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA', 'A, WA') "
    "AND price BETWEEN 250000 AND 400000",
    "SELECT * FROM ListProperty WHERE bedroomcount >= 3",
]


@pytest.fixture
def incrementally_updated():
    stats = preprocess_workload(
        Workload.from_sql_strings(BASE_SQL),
        list_property_schema(),
        {"price": 5_000},
    )
    for sql in NEW_SQL:
        stats.record_query(WorkloadQuery.from_sql(sql))
    return stats


@pytest.fixture
def batch_rebuilt():
    return preprocess_workload(
        Workload.from_sql_strings(BASE_SQL + NEW_SQL),
        list_property_schema(),
        {"price": 5_000},
    )


class TestIncrementalEqualsBatch:
    def test_totals(self, incrementally_updated, batch_rebuilt):
        assert (
            incrementally_updated.total_queries == batch_rebuilt.total_queries == 4
        )

    def test_n_attr(self, incrementally_updated, batch_rebuilt):
        for attribute in ("neighborhood", "price", "bedroomcount", "yearbuilt"):
            assert incrementally_updated.n_attr(attribute) == batch_rebuilt.n_attr(
                attribute
            )

    def test_occ(self, incrementally_updated, batch_rebuilt):
        for value in ("A, WA", "B, WA", "C, WA"):
            assert incrementally_updated.occ(
                "neighborhood", value
            ) == batch_rebuilt.occ("neighborhood", value)

    def test_splitpoint_goodness(self, incrementally_updated, batch_rebuilt):
        for point in (200_000, 250_000, 300_000, 400_000):
            assert incrementally_updated.splitpoints_table("price").goodness(
                point
            ) == batch_rebuilt.splitpoints_table("price").goodness(point)

    def test_range_overlap_counts(self, incrementally_updated, batch_rebuilt):
        for low, high in ((225_000, 275_000), (350_000, 500_000), (0, 100_000)):
            assert incrementally_updated.n_overlap_range(
                "price", low, high
            ) == batch_rebuilt.n_overlap_range("price", low, high)


class TestLiveUpdateChangesTrees:
    def test_new_interest_shifts_probabilities(self):
        stats = preprocess_workload(
            Workload.from_sql_strings(BASE_SQL * 5),
            list_property_schema(),
            {"price": 5_000},
        )
        before = stats.usage_fraction("bedroomcount")
        for _ in range(20):
            stats.record_query(
                WorkloadQuery.from_sql(
                    "SELECT * FROM ListProperty WHERE bedroomcount BETWEEN 3 AND 4"
                )
            )
        after = stats.usage_fraction("bedroomcount")
        assert before == 0.0 and after > 0.5
