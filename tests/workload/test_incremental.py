"""Tests for incremental count-table maintenance (streaming log updates)."""

import pytest

from repro.data.homes import list_property_schema
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload


BASE_SQL = [
    "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')",
    "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000",
]

NEW_SQL = [
    "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA', 'A, WA') "
    "AND price BETWEEN 250000 AND 400000",
    "SELECT * FROM ListProperty WHERE bedroomcount >= 3",
]


@pytest.fixture
def incrementally_updated():
    stats = preprocess_workload(
        Workload.from_sql_strings(BASE_SQL),
        list_property_schema(),
        {"price": 5_000},
    )
    for sql in NEW_SQL:
        stats.record_query(WorkloadQuery.from_sql(sql))
    return stats


@pytest.fixture
def batch_rebuilt():
    return preprocess_workload(
        Workload.from_sql_strings(BASE_SQL + NEW_SQL),
        list_property_schema(),
        {"price": 5_000},
    )


class TestIncrementalEqualsBatch:
    def test_totals(self, incrementally_updated, batch_rebuilt):
        assert (
            incrementally_updated.total_queries == batch_rebuilt.total_queries == 4
        )

    def test_n_attr(self, incrementally_updated, batch_rebuilt):
        for attribute in ("neighborhood", "price", "bedroomcount", "yearbuilt"):
            assert incrementally_updated.n_attr(attribute) == batch_rebuilt.n_attr(
                attribute
            )

    def test_occ(self, incrementally_updated, batch_rebuilt):
        for value in ("A, WA", "B, WA", "C, WA"):
            assert incrementally_updated.occ(
                "neighborhood", value
            ) == batch_rebuilt.occ("neighborhood", value)

    def test_splitpoint_goodness(self, incrementally_updated, batch_rebuilt):
        for point in (200_000, 250_000, 300_000, 400_000):
            assert incrementally_updated.splitpoints_table("price").goodness(
                point
            ) == batch_rebuilt.splitpoints_table("price").goodness(point)

    def test_range_overlap_counts(self, incrementally_updated, batch_rebuilt):
        for low, high in ((225_000, 275_000), (350_000, 500_000), (0, 100_000)):
            assert incrementally_updated.n_overlap_range(
                "price", low, high
            ) == batch_rebuilt.n_overlap_range("price", low, high)


class TestLiveUpdateChangesTrees:
    def test_new_interest_shifts_probabilities(self):
        stats = preprocess_workload(
            Workload.from_sql_strings(BASE_SQL * 5),
            list_property_schema(),
            {"price": 5_000},
        )
        before = stats.usage_fraction("bedroomcount")
        for _ in range(20):
            stats.record_query(
                WorkloadQuery.from_sql(
                    "SELECT * FROM ListProperty WHERE bedroomcount BETWEEN 3 AND 4"
                )
            )
        after = stats.usage_fraction("bedroomcount")
        assert before == 0.0 and after > 0.5


class TestSharedDispatchEquivalence:
    """Batch and incremental ingestion share one condition dispatcher
    (``fold_query_conditions``); this asserts the full equivalence
    ``preprocess(full log)`` ≡ ``preprocess(prefix)`` + ``record_query(rest)``
    including the IN-on-numeric path, across every count-table quantity.
    """

    PREFIX = [
        "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')",
        "SELECT * FROM ListProperty WHERE price IN (200000, 275000)",
        "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000",
    ]
    REST = [
        "SELECT * FROM ListProperty WHERE price IN (250000) "
        "AND neighborhood IN ('B, WA')",
        "SELECT * FROM ListProperty WHERE bedroomcount >= 3",
        "SELECT * FROM ListProperty WHERE mystery IN ('x')",
    ]

    @pytest.fixture
    def incremental(self):
        stats = preprocess_workload(
            Workload.from_sql_strings(self.PREFIX),
            list_property_schema(),
            {"price": 5_000},
        )
        for sql in self.REST:
            stats.record_query(WorkloadQuery.from_sql(sql))
        return stats

    @pytest.fixture
    def batch(self):
        return preprocess_workload(
            Workload.from_sql_strings(self.PREFIX + self.REST),
            list_property_schema(),
            {"price": 5_000},
        )

    def test_n_attr(self, incremental, batch):
        for attribute in (
            "neighborhood", "price", "bedroomcount", "yearbuilt", "mystery",
        ):
            assert incremental.n_attr(attribute) == batch.n_attr(attribute)
        assert incremental.total_queries == batch.total_queries == 6

    def test_occ(self, incremental, batch):
        for value in ("A, WA", "B, WA", "C, WA"):
            assert incremental.occ("neighborhood", value) == batch.occ(
                "neighborhood", value
            )

    def test_splitpoint_goodness(self, incremental, batch):
        table_a = incremental.splitpoints_table("price")
        table_b = batch.splitpoints_table("price")
        for point in (200_000, 250_000, 275_000, 300_000):
            assert table_a.goodness(point) == table_b.goodness(point) > 0

    def test_count_overlapping(self, incremental, batch):
        for low, high in (
            (0, 1_000_000), (225_000, 260_000), (270_000, 280_000), (0, 100_000),
        ):
            assert incremental.n_overlap_range(
                "price", low, high
            ) == batch.n_overlap_range("price", low, high)

    def test_best_splitpoints(self, incremental, batch):
        assert incremental.splitpoints_table("price").best_splitpoints(
            0, 1_000_000
        ) == batch.splitpoints_table("price").best_splitpoints(0, 1_000_000)
