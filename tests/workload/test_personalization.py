"""Tests for personalized workload statistics (footnote 4)."""

import pytest

from repro.data.homes import list_property_schema
from repro.workload.log import Workload
from repro.workload.personalization import (
    blend_workloads,
    personal_share,
    personalized_statistics,
    weight_for_share,
)


@pytest.fixture
def global_workload():
    return Workload.from_sql_strings(
        ["SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')"] * 8
        + ["SELECT * FROM ListProperty WHERE price BETWEEN 100000 AND 200000"] * 2
    )


@pytest.fixture
def history():
    return Workload.from_sql_strings(
        ["SELECT * FROM ListProperty WHERE yearbuilt >= 1990"] * 2
    )


class TestBlend:
    def test_sizes_add(self, global_workload, history):
        blended = blend_workloads(global_workload, history, personal_weight=3)
        assert len(blended) == 10 + 2 * 3

    def test_weight_one_is_plain_union(self, global_workload, history):
        blended = blend_workloads(global_workload, history)
        assert len(blended) == 12

    def test_invalid_weight_rejected(self, global_workload, history):
        with pytest.raises(ValueError):
            blend_workloads(global_workload, history, personal_weight=0)

    def test_personal_share(self, global_workload, history):
        assert personal_share(global_workload, history, 5) == pytest.approx(
            10 / 20
        )

    def test_personal_share_empty(self):
        assert personal_share(Workload([]), Workload([]), 3) == 0.0


class TestPersonalizedStatistics:
    def test_counts_shift_toward_history(self, global_workload, history):
        schema = list_property_schema()
        plain = personalized_statistics(
            global_workload, Workload([]), schema
        ) if False else None
        base = personalized_statistics(
            global_workload, history, schema, personal_weight=1
        )
        heavy = personalized_statistics(
            global_workload, history, schema, personal_weight=10
        )
        assert heavy.usage_fraction("yearbuilt") > base.usage_fraction("yearbuilt")
        assert heavy.usage_fraction("neighborhood") < base.usage_fraction(
            "neighborhood"
        )

    def test_counts_are_exact(self, global_workload, history):
        schema = list_property_schema()
        stats = personalized_statistics(
            global_workload, history, schema, personal_weight=4
        )
        # N = 10 + 2*4 = 18; NAttr(yearbuilt) = 8.
        assert stats.total_queries == 18
        assert stats.n_attr("yearbuilt") == 8


class TestWeightForShare:
    def test_achieves_requested_share(self, global_workload, history):
        weight = weight_for_share(global_workload, history, 0.5)
        assert personal_share(global_workload, history, weight) >= 0.5
        # Minimality: one less weight falls short (when weight > 1).
        if weight > 1:
            assert personal_share(global_workload, history, weight - 1) < 0.5

    def test_invalid_share_rejected(self, global_workload, history):
        with pytest.raises(ValueError):
            weight_for_share(global_workload, history, 1.0)

    def test_empty_history_rejected(self, global_workload):
        with pytest.raises(ValueError, match="empty"):
            weight_for_share(global_workload, Workload([]), 0.5)


class TestPersonalizationChangesTrees:
    def test_history_tilts_attribute_choice(self, homes_table, workload):
        """A user who always filters by year-built gets year-built levels."""
        from repro.core.algorithm import CostBasedCategorizer
        from repro.core.config import PAPER_CONFIG
        from repro.data.geography import SEATTLE_BELLEVUE
        from repro.relational.expressions import InPredicate
        from repro.relational.query import SelectQuery

        history = Workload.from_sql_strings(
            [
                "SELECT * FROM ListProperty WHERE "
                "neighborhood IN ('Queen Anne, WA') AND yearbuilt >= 1990"
            ]
            * 5
        )
        weight = weight_for_share(workload, history, 0.45)
        stats = personalized_statistics(
            workload,
            history,
            homes_table.schema,
            PAPER_CONFIG.separation_intervals,
            personal_weight=weight,
        )
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        rows = query.execute(homes_table)
        tree = CostBasedCategorizer(stats, PAPER_CONFIG).categorize(rows, query)
        assert "yearbuilt" in tree.level_attributes(), (
            "a heavily year-built-biased history should surface that attribute"
        )
