"""Tests for query broadening strategies (Section 6.2)."""

import pytest

from repro.data.geography import SEATTLE_BELLEVUE
from repro.workload.broadening import (
    STRATEGIES,
    broaden_drop_all_but_location,
    broaden_to_region,
    broaden_widen_price,
)
from repro.workload.model import WorkloadQuery


@pytest.fixture
def seattle_w():
    return WorkloadQuery.from_sql(
        "SELECT * FROM ListProperty WHERE "
        "neighborhood IN ('Queen Anne, WA', 'Ballard, WA') "
        "AND price BETWEEN 300000 AND 500000 AND bedroomcount >= 3"
    )


class TestRegionBroadening:
    def test_neighborhoods_expanded_to_region(self, seattle_w):
        qw = broaden_to_region(seattle_w)
        assert qw.in_values("neighborhood") == frozenset(
            SEATTLE_BELLEVUE.neighborhood_names()
        )

    def test_other_conditions_dropped(self, seattle_w):
        qw = broaden_to_region(seattle_w)
        assert set(qw.conditions) == {"neighborhood"}

    def test_subsumes_original(self, seattle_w, homes_table):
        qw = broaden_to_region(seattle_w)
        original = seattle_w.query.execute(homes_table)
        broadened = qw.query.execute(homes_table)
        assert set(original.indices) <= set(broadened.indices)

    def test_city_query_falls_back_to_city_region(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE city IN ('Bellevue') AND price <= 500000"
        )
        qw = broaden_to_region(w)
        assert qw.in_values("neighborhood") == frozenset(
            SEATTLE_BELLEVUE.neighborhood_names()
        )

    def test_no_location_falls_back_to_biggest_market(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE price <= 500000"
        )
        qw = broaden_to_region(w)
        assert qw.in_values("neighborhood")  # some region was chosen


class TestWidenPrice:
    def test_price_kept_but_wider(self, seattle_w):
        qw = broaden_widen_price(seattle_w)
        low, high = qw.range_bounds("price")
        assert low <= 300_000 and high >= 500_000
        assert (high - low) > 200_000

    def test_subsumes_original(self, seattle_w, homes_table):
        qw = broaden_widen_price(seattle_w)
        original = seattle_w.query.execute(homes_table)
        broadened = qw.query.execute(homes_table)
        assert set(original.indices) <= set(broadened.indices)

    def test_one_sided_price_handled(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE "
            "neighborhood IN ('Queen Anne, WA') AND price <= 400000"
        )
        qw = broaden_widen_price(w)
        low, high = qw.range_bounds("price")
        assert low >= 0 and high > 400_000


class TestLocationOnly:
    def test_keeps_location_verbatim(self, seattle_w):
        qw = broaden_drop_all_but_location(seattle_w)
        assert qw.in_values("neighborhood") == seattle_w.in_values("neighborhood")
        assert not qw.constrains("price")

    def test_falls_back_to_region_without_location(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE price <= 500000"
        )
        qw = broaden_drop_all_but_location(w)
        assert qw.constrains("neighborhood")


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(STRATEGIES) == {"region", "widen-price", "location-only"}

    def test_registered_strategies_callable(self, seattle_w):
        for strategy in STRATEGIES.values():
            assert strategy(seattle_w).constrains("neighborhood")
