"""Tests for the one-pass workload preprocessor."""

import pytest

from repro.data.homes import list_property_schema
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def tiny_stats():
    workload = Workload.from_sql_strings(
        [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA', 'B, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA') "
            "AND price BETWEEN 200000 AND 300000",
            "SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 300000",
            "SELECT * FROM ListProperty WHERE bedroomcount >= 3",
        ]
    )
    return preprocess_workload(
        workload, list_property_schema(), {"price": 5_000}
    )


class TestUsage:
    def test_total_queries(self, tiny_stats):
        assert tiny_stats.total_queries == 4

    def test_n_attr(self, tiny_stats):
        assert tiny_stats.n_attr("neighborhood") == 2
        assert tiny_stats.n_attr("price") == 2
        assert tiny_stats.n_attr("bedroomcount") == 1
        assert tiny_stats.n_attr("propertytype") == 0

    def test_usage_fraction(self, tiny_stats):
        assert tiny_stats.usage_fraction("price") == 0.5


class TestOccurrences:
    def test_occ(self, tiny_stats):
        assert tiny_stats.occ("neighborhood", "A, WA") == 2
        assert tiny_stats.occ("neighborhood", "B, WA") == 1
        assert tiny_stats.occ("neighborhood", "C, WA") == 0

    def test_numeric_attribute_has_no_occurrence_table(self, tiny_stats):
        with pytest.raises(KeyError, match="categorical"):
            tiny_stats.occurrence_counts("price")

    def test_n_overlap_values_single(self, tiny_stats):
        assert tiny_stats.n_overlap_values("neighborhood", {"A, WA"}) == 2

    def test_n_overlap_values_clamped_to_n_attr(self, tiny_stats):
        # Summing occ over both values would double-count query 1.
        overlap = tiny_stats.n_overlap_values("neighborhood", {"A, WA", "B, WA"})
        assert overlap == 2  # clamped to NAttr(neighborhood)


class TestSplitpoints:
    def test_goodness_recorded(self, tiny_stats):
        table = tiny_stats.splitpoints_table("price")
        assert table.goodness(300_000) == 2  # both ranges end there
        assert table.goodness(200_000) == 1
        assert table.goodness(250_000) == 1

    def test_categorical_attribute_has_no_splitpoints(self, tiny_stats):
        with pytest.raises(KeyError, match="numeric"):
            tiny_stats.splitpoints_table("neighborhood")

    def test_n_overlap_range(self, tiny_stats):
        # Bucket [225K, 275K) overlaps both price ranges.
        assert tiny_stats.n_overlap_range("price", 225_000, 275_000) == 2
        # Bucket [0, 100K) overlaps neither.
        assert tiny_stats.n_overlap_range("price", 0, 100_000) == 0

    def test_one_sided_condition_indexed(self, tiny_stats):
        # bedroomcount >= 3 overlaps [4, 6).
        assert tiny_stats.n_overlap_range("bedroomcount", 4, 6) == 1


class TestRobustness:
    def test_unknown_attribute_counts_in_usage_only(self):
        workload = Workload.from_sql_strings(
            ["SELECT * FROM ListProperty WHERE mystery IN ('x')"]
        )
        stats = preprocess_workload(workload, list_property_schema())
        assert stats.n_attr("mystery") == 1
        with pytest.raises(KeyError):
            stats.occurrence_counts("mystery")

    def test_empty_workload(self):
        stats = preprocess_workload(Workload([]), list_property_schema())
        assert stats.total_queries == 0
        assert stats.usage_fraction("price") == 0.0

    def test_real_workload_has_expected_retained_attributes(self, statistics):
        # The x = 0.4 threshold retains the paper's six attributes on the
        # shared synthetic workload (Section 5.1.1 calibration).
        retained = {
            a for a in statistics.schema.names()
            if statistics.usage_fraction(a) >= 0.4
        }
        assert retained == {
            "neighborhood", "price", "bedroomcount",
            "bathcount", "propertytype", "squarefootage",
        }


class TestInOnNumericAttribute:
    """Regression: IN-conditions on numeric attributes must feed the
    SplitPoints table and range index as degenerate point ranges, not be
    silently dropped (each condition feeds the table its shape permits)."""

    @pytest.fixture
    def numeric_in_stats(self):
        workload = Workload.from_sql_strings(
            [
                "SELECT * FROM ListProperty WHERE price IN (200000, 300000)",
                "SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 350000",
            ]
        )
        return preprocess_workload(
            workload, list_property_schema(), {"price": 5_000}
        )

    def test_counts_in_usage(self, numeric_in_stats):
        assert numeric_in_stats.n_attr("price") == 2

    def test_feeds_splitpoints_as_point_ranges(self, numeric_in_stats):
        table = numeric_in_stats.splitpoints_table("price")
        # A point range [v, v] starts AND ends at snap(v).
        assert table.start_count(200_000) == 1
        assert table.end_count(200_000) == 1
        assert table.goodness(200_000) == 2
        assert table.goodness(300_000) == 2

    def test_contributes_to_n_overlap(self, numeric_in_stats):
        # Bucket [150000, 250000) contains the point 200000 and overlaps
        # nothing else from the IN-query; the BETWEEN query misses it too.
        assert numeric_in_stats.n_overlap_range("price", 150_000, 250_000) == 1
        # Bucket [250000, 400000): point 300000 + the BETWEEN range.
        assert numeric_in_stats.n_overlap_range("price", 250_000, 400_000) == 2

    def test_non_numeric_literals_in_numeric_in_set_are_skipped(self):
        from repro.relational.expressions import InPredicate
        from repro.relational.query import SelectQuery
        from repro.workload.model import WorkloadQuery

        query = WorkloadQuery.from_query(
            SelectQuery("ListProperty", InPredicate("price", ["cheap", 100_000]))
        )
        stats = preprocess_workload(
            Workload([query]), list_property_schema(), {"price": 5_000}
        )
        assert stats.n_attr("price") == 1
        assert stats.splitpoints_table("price").goodness(100_000) == 2
        assert stats.range_index("price").total_ranges == 1
