"""Tests for the count tables of Figures 4(a), 4(b) and 5(b)."""

import math

import pytest

from repro.workload.counts import (
    AttributeUsageCounts,
    OccurrenceCounts,
    RangeIndex,
    SplitPointsTable,
)


class TestAttributeUsageCounts:
    def test_n_attr_counts_queries_not_conditions(self):
        usage = AttributeUsageCounts()
        usage.record_query(["price", "price", "city"])  # one query
        assert usage.n_attr("price") == 1
        assert usage.total_queries == 1

    def test_usage_fraction(self):
        usage = AttributeUsageCounts()
        usage.record_query(["price"])
        usage.record_query(["city"])
        assert usage.usage_fraction("price") == 0.5

    def test_empty_workload_fraction_zero(self):
        assert AttributeUsageCounts().usage_fraction("price") == 0.0

    def test_as_rows_most_used_first(self):
        usage = AttributeUsageCounts()
        usage.record_query(["a", "b"])
        usage.record_query(["b"])
        assert usage.as_rows() == [("b", 2), ("a", 1)]


class TestOccurrenceCounts:
    def test_occ_counts_queries(self):
        occ = OccurrenceCounts("city")
        occ.record_values(["Seattle", "Bellevue"])
        occ.record_values(["Seattle"])
        assert occ.occ("Seattle") == 2
        assert occ.occ("Bellevue") == 1
        assert occ.occ("Tacoma") == 0

    def test_duplicates_within_query_counted_once(self):
        occ = OccurrenceCounts("city")
        occ.record_values(["Seattle", "Seattle"])
        assert occ.occ("Seattle") == 1

    def test_order_by_occurrence(self):
        occ = OccurrenceCounts("city")
        occ.record_values(["b"])
        occ.record_values(["b"])
        occ.record_values(["a"])
        assert occ.order_by_occurrence(["a", "b", "c"]) == ["b", "a", "c"]

    def test_order_ties_deterministic(self):
        occ = OccurrenceCounts("city")
        assert occ.order_by_occurrence(["z", "a"]) == ["a", "z"]


class TestSplitPointsTable:
    def test_snapping(self):
        table = SplitPointsTable("price", 5_000)
        assert table.snap(203_100) == 205_000
        assert table.snap(202_000) == 200_000

    def test_record_and_goodness(self):
        table = SplitPointsTable("price", 1_000)
        table.record_range(2_000, 5_000)
        table.record_range(5_000, 8_000)
        assert table.start_count(5_000) == 1
        assert table.end_count(5_000) == 1
        assert table.goodness(5_000) == 2

    def test_infinite_bounds_not_recorded(self):
        table = SplitPointsTable("price", 1_000)
        table.record_range(-math.inf, 5_000)
        table.record_range(3_000, math.inf)
        assert table.end_count(5_000) == 1
        assert table.start_count(3_000) == 1
        rows = table.rows_in_range(0, 10_000)
        assert all(not math.isinf(r.splitpoint) for r in rows)

    def test_best_splitpoints_ordered_by_goodness(self):
        table = SplitPointsTable("price", 1_000)
        for _ in range(3):
            table.record_range(2_000, 5_000)
        table.record_range(3_000, 5_000)
        best = table.best_splitpoints(0, 10_000)
        assert best[0] == 5_000  # goodness 4
        assert best[1] == 2_000  # goodness 3

    def test_boundaries_excluded(self):
        table = SplitPointsTable("price", 1_000)
        table.record_range(2_000, 5_000)
        assert 2_000 not in table.best_splitpoints(2_000, 5_000)
        assert 5_000 not in table.best_splitpoints(2_000, 5_000)

    def test_figure_5b_example(self):
        # Reconstructs the paper's Figure 5(b): goodness 130 at 5000,
        # 100 at 8000, 50 at 2000.
        table = SplitPointsTable("price", 1_000)
        for _ in range(10):
            table.record_range(2_000, 3_000)  # start at 2000 (10)
        for _ in range(40):
            table.record_range(1_000, 2_000)  # end at 2000 (40)
        for _ in range(40):
            table.record_range(5_000, 6_000)
        for _ in range(90):
            table.record_range(4_000, 5_000)
        for _ in range(80):
            table.record_range(8_000, 9_000)
        for _ in range(20):
            table.record_range(7_000, 8_000)
        assert table.goodness(5_000) == 130
        assert table.goodness(8_000) == 100
        assert table.goodness(2_000) == 50
        assert table.best_splitpoints(0, 10_000)[:2] == [5_000, 8_000]

    def test_grid_points(self):
        table = SplitPointsTable("price", 1_000)
        assert table.grid_points(500, 3_500) == [1_000, 2_000, 3_000]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SplitPointsTable("price", 0)


class TestRangeIndex:
    @pytest.fixture
    def index(self):
        idx = RangeIndex("price")
        idx.record_range(100, 200)
        idx.record_range(150, 300)
        idx.record_range(400, 500)
        idx.finalize()
        return idx

    def test_total(self, index):
        assert index.total_ranges == 3

    def test_count_overlapping_half_open(self, index):
        # Bucket [200, 400): overlaps [150,300] only — [100,200] touches
        # only at 200 which the half-open bucket... includes 200!  A range
        # ending exactly at 200 does overlap [200, 400).
        assert index.count_overlapping(200, 400) == 2

    def test_count_overlapping_disjoint(self, index):
        assert index.count_overlapping(600, 700) == 0

    def test_half_open_excludes_range_starting_at_high(self, index):
        # Bucket [300, 400): [150,300] touches at 300 (overlap); [400,500]
        # starts exactly at the open end, so it does NOT overlap.
        assert index.count_overlapping(300, 400) == 1

    def test_closed_includes_range_starting_at_high(self, index):
        # Closing the bucket at 400 brings [400, 500] in as well.
        assert index.count_overlapping(300, 400, high_inclusive=True) == 2

    def test_append_after_finalize_resorts_lazily(self, index):
        # Live systems stream new log entries: appending after counting
        # must mark the index dirty and re-sort on the next count.
        assert index.count_overlapping(600, 700) == 0
        index.record_range(600, 650)
        assert index.count_overlapping(600, 700) == 1
        assert index.total_ranges == 4

    def test_auto_finalize_on_count(self):
        idx = RangeIndex("price")
        idx.record_range(10, 20)
        assert idx.count_overlapping(15, 25) == 1


class TestRangeIndexLazyResort:
    """Streaming appends must mark the index dirty and re-sort on demand."""

    def test_is_finalized_lifecycle(self):
        idx = RangeIndex("price")
        assert not idx.is_finalized
        idx.record_range(10, 20)
        idx.finalize()
        assert idx.is_finalized
        idx.record_range(5, 15)
        assert not idx.is_finalized
        # counting auto-finalizes and sees both ranges
        assert idx.count_overlapping(12, 18) == 2
        assert idx.is_finalized

    def test_count_after_append_is_correct_not_stale(self):
        idx = RangeIndex("price")
        idx.record_range(100, 200)
        assert idx.count_overlapping(0, 1_000) == 1
        # Append out-of-order endpoints: a stale sorted array would
        # bisect wrongly; the lazy re-sort must fix it.
        idx.record_range(50, 60)
        idx.record_range(300, 400)
        assert idx.count_overlapping(55, 58) == 1
        assert idx.count_overlapping(0, 1_000) == 3
        assert idx.count_overlapping(250, 260) == 0
