"""Tests for the persona-based workload generator."""

import pytest

from repro.workload.generator import (
    DEFAULT_ATTRIBUTE_USAGE,
    WorkloadGeneratorConfig,
    generate_workload,
)


class TestBasics:
    def test_count(self, workload):
        assert len(workload) == 3_000

    def test_deterministic(self):
        config = WorkloadGeneratorConfig(query_count=100, seed=1)
        a = generate_workload(config)
        b = generate_workload(config)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadGeneratorConfig(query_count=0))

    def test_every_query_has_a_condition(self, workload):
        assert all(len(q.conditions) >= 1 for q in workload)

    def test_queries_parse_back(self, workload):
        from repro.workload.model import WorkloadQuery

        for query in list(workload)[:50]:
            WorkloadQuery.from_sql(query.to_sql())


class TestStatisticalTexture:
    def test_usage_fractions_near_configured(self, workload):
        n = len(workload)
        for attribute, target in DEFAULT_ATTRIBUTE_USAGE.items():
            if attribute in ("city", "state", "zipcode"):
                continue  # conditional on neighborhood absence / rare
            observed = sum(1 for q in workload if q.constrains(attribute)) / n
            assert abs(observed - target) < 0.06, (attribute, observed, target)

    def test_neighborhood_dominates(self, workload):
        n = len(workload)
        observed = sum(1 for q in workload if q.constrains("neighborhood")) / n
        assert observed > 0.85

    def test_occ_skewed(self, statistics):
        rows = statistics.occurrence_counts("neighborhood").as_rows()
        assert len(rows) > 20
        # Popular neighborhoods are queried far more than the tail.
        assert rows[0][1] > rows[-1][1] * 3

    def test_price_endpoints_cluster_on_round_grid(self, workload):
        import math

        endpoints = []
        for q in workload:
            bounds = q.range_bounds("price")
            if bounds:
                endpoints.extend(b for b in bounds if not math.isinf(b))
        assert endpoints
        on_25k = sum(1 for e in endpoints if e % 25_000 == 0) / len(endpoints)
        on_5k = sum(1 for e in endpoints if e % 5_000 == 0) / len(endpoints)
        assert on_5k == 1.0  # everything lands on the SplitPoints grid
        assert on_25k > 0.5  # most mass on the coarse round grid

    def test_neighborhoods_within_one_region_per_query(self, workload):
        from repro.data.geography import region_of_neighborhood

        for q in list(workload)[:200]:
            hoods = q.in_values("neighborhood")
            if not hoods:
                continue
            regions = {region_of_neighborhood(h).name for h in hoods}
            assert len(regions) == 1
