"""Tests for Workload collections."""

import pytest

from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery


SQL = [
    "SELECT * FROM T WHERE city IN ('a')",
    "SELECT * FROM T WHERE price <= 100",
    "SELECT * FROM T WHERE city IN ('b') AND price BETWEEN 1 AND 2",
    "SELECT * FROM T WHERE bedroomcount >= 3",
]


@pytest.fixture
def small_workload():
    return Workload.from_sql_strings(SQL)


class TestConstruction:
    def test_from_sql_strings(self, small_workload):
        assert len(small_workload) == 4

    def test_blank_lines_skipped(self):
        w = Workload.from_sql_strings(["", "  ", SQL[0]])
        assert len(w) == 1

    def test_comment_lines_skipped(self):
        w = Workload.from_sql_strings(["-- a comment", SQL[0]])
        assert len(w) == 1

    def test_bad_entry_reports_index(self):
        with pytest.raises(ValueError, match="workload entry 1"):
            Workload.from_sql_strings(
                [SQL[0], "SELECT * FROM T WHERE price >= 5 AND price <= 1"]
            )

    def test_indexing(self, small_workload):
        assert small_workload[1].constrains("price")


class TestFileRoundTrip:
    def test_save_and_load(self, small_workload, tmp_path):
        path = tmp_path / "workload.sql"
        small_workload.save(path)
        loaded = Workload.load(path)
        assert len(loaded) == len(small_workload)
        assert [str(q) for q in loaded] == [str(q) for q in small_workload]


class TestHoldout:
    def test_without_removes_by_identity(self, small_workload):
        held = [small_workload[0], small_workload[2]]
        remaining = small_workload.without(held)
        assert len(remaining) == 2
        assert all(q is not held[0] and q is not held[1] for q in remaining)

    def test_without_does_not_remove_equal_duplicates(self):
        w = Workload.from_sql_strings([SQL[0], SQL[0]])
        remaining = w.without([w[0]])
        assert len(remaining) == 1

    def test_sample_deterministic(self, small_workload):
        a = small_workload.sample(2, seed=3)
        b = small_workload.sample(2, seed=3)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_sample_too_many_rejected(self, small_workload):
        with pytest.raises(ValueError, match="cannot sample"):
            small_workload.sample(10)

    def test_disjoint_subsets(self, small_workload):
        subsets = small_workload.disjoint_subsets(2, 2, seed=1)
        assert len(subsets) == 2
        flattened = [id(q) for s in subsets for q in s]
        assert len(flattened) == len(set(flattened)) == 4

    def test_filter(self, small_workload):
        priced = small_workload.filter(lambda q: q.constrains("price"))
        assert len(priced) == 2
