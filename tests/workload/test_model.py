"""Tests for the WorkloadQuery model."""

import math

import pytest

from repro.workload.model import WorkloadQuery


class TestFromSql:
    def test_conditions_extracted(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM T WHERE city IN ('a') AND price BETWEEN 1 AND 2"
        )
        assert set(w.conditions) == {"city", "price"}
        assert w.attributes == frozenset({"city", "price"})

    def test_constrains(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE price <= 100")
        assert w.constrains("price")
        assert not w.constrains("city")

    def test_in_values(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE city IN ('a', 'b')")
        assert w.in_values("city") == frozenset({"a", "b"})
        assert w.in_values("price") is None

    def test_range_bounds(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE price BETWEEN 10 AND 20")
        assert w.range_bounds("price") == (10.0, 20.0)

    def test_one_sided_range_bounds(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE price <= 100")
        low, high = w.range_bounds("price")
        assert math.isinf(low) and high == 100

    def test_range_bounds_absent(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE city IN ('a')")
        assert w.range_bounds("price") is None

    def test_multiple_comparisons_merged(self):
        w = WorkloadQuery.from_sql(
            "SELECT * FROM T WHERE price >= 10 AND price <= 20"
        )
        assert w.range_bounds("price") == (10.0, 20.0)

    def test_contradictory_conditions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadQuery.from_sql(
                "SELECT * FROM T WHERE price >= 20 AND price <= 10"
            )


class TestRoundTrip:
    def test_to_sql_reparses_identically(self):
        sql = "SELECT * FROM T WHERE city IN ('a', 'b') AND price BETWEEN 1 AND 2"
        w = WorkloadQuery.from_sql(sql)
        again = WorkloadQuery.from_sql(w.to_sql())
        assert again.conditions.keys() == w.conditions.keys()
        assert again.in_values("city") == w.in_values("city")
        assert again.range_bounds("price") == w.range_bounds("price")

    def test_str_is_sql(self):
        w = WorkloadQuery.from_sql("SELECT * FROM T WHERE price <= 100")
        assert str(w).startswith("SELECT")
