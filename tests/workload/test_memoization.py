"""Cache-invalidation tests: ``record_query`` must update every memoized
probability ingredient — no stale ``usage_fraction``, ``occ``,
``n_overlap_range`` or split-point ordering may survive a live log update.
"""

import pytest

from repro.data.homes import list_property_schema
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload


BASE_SQL = [
    "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')",
    "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000",
    "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA') "
    "AND price BETWEEN 250000 AND 350000",
]


@pytest.fixture
def stats():
    return preprocess_workload(
        Workload.from_sql_strings(BASE_SQL),
        list_property_schema(),
        {"price": 5_000},
    )


class TestMemoizationCorrectness:
    def test_memoized_equals_unmemoized(self, stats):
        cold = preprocess_workload(
            Workload.from_sql_strings(BASE_SQL),
            list_property_schema(),
            {"price": 5_000},
            memoize=False,
        )
        assert not cold.memoization_enabled
        for attribute in ("neighborhood", "price", "bedroomcount"):
            assert stats.usage_fraction(attribute) == cold.usage_fraction(
                attribute
            )
        for value in ("A, WA", "B, WA", "nowhere"):
            assert stats.occ("neighborhood", value) == cold.occ(
                "neighborhood", value
            )
        for low, high in ((150_000, 260_000), (0, 100_000)):
            assert stats.n_overlap_range("price", low, high) == cold.n_overlap_range(
                "price", low, high
            )

    def test_repeated_lookup_served_from_memo(self, stats):
        first = stats.n_overlap_range("price", 150_000, 260_000)
        assert ("price") in stats._range_memo
        assert stats.n_overlap_range("price", 150_000, 260_000) == first

    def test_set_memoization_false_clears_and_bypasses(self, stats):
        stats.usage_fraction("price")
        stats.occ("neighborhood", "A, WA")
        stats.n_overlap_range("price", 0, 999_999)
        stats.set_memoization(False)
        assert not stats._usage_memo
        assert not stats._occ_memo
        assert not stats._range_memo
        # still correct without the caches
        assert stats.occ("neighborhood", "A, WA") == 1


class TestRecordQueryInvalidation:
    """record_query must visibly update every cached probability."""

    def test_usage_fraction_updates(self, stats):
        before = stats.usage_fraction("bedroomcount")
        assert before == 0.0
        assert "bedroomcount" in stats._usage_memo  # memo was populated
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE bedroomcount BETWEEN 3 AND 4"
            )
        )
        assert stats.usage_fraction("bedroomcount") == pytest.approx(1 / 4)

    def test_unrelated_attribute_fraction_also_updates(self, stats):
        # N is the shared denominator: a query touching ONLY bedroomcount
        # still dilutes neighborhood's fraction.
        before = stats.usage_fraction("neighborhood")
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE bedroomcount BETWEEN 3 AND 4"
            )
        )
        after = stats.usage_fraction("neighborhood")
        assert after == pytest.approx(2 / 4)
        assert after < before

    def test_occ_updates(self, stats):
        assert stats.occ("neighborhood", "C, WA") == 0
        assert "C, WA" in stats._occ_memo["neighborhood"]  # memo populated
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE neighborhood IN ('C, WA')"
            )
        )
        assert stats.occ("neighborhood", "C, WA") == 1

    def test_n_overlap_range_updates(self, stats):
        assert stats.n_overlap_range("price", 400_000, 500_000) == 0
        assert stats._range_memo["price"]  # memo populated
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE price BETWEEN 420000 AND 480000"
            )
        )
        assert stats.n_overlap_range("price", 400_000, 500_000) == 1

    def test_n_overlap_range_update_resorts_lazy_range_index(self, stats):
        # The memoized lookup sits on top of RangeIndex's lazy re-sort:
        # record_query marks the index dirty AND drops the memo entry, so
        # the next lookup re-sorts and counts the new range.
        index = stats.range_index("price")
        stats.n_overlap_range("price", 0, 1_000_000)
        assert index.is_finalized
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE price BETWEEN 100000 AND 120000"
            )
        )
        assert not index.is_finalized  # dirty until the next count
        assert stats.n_overlap_range("price", 0, 1_000_000) == 3
        assert index.is_finalized

    def test_best_splitpoints_update(self, stats):
        table = stats.splitpoints_table("price")
        before = table.best_splitpoints(0, 1_000_000)
        assert before[0] == 200_000  # all goodness 1; ascending tie-break
        # Nine users asking 420000..480000 make those the top splitpoints.
        for _ in range(9):
            stats.record_query(
                WorkloadQuery.from_sql(
                    "SELECT * FROM ListProperty WHERE price BETWEEN 420000 AND 480000"
                )
            )
        after = table.best_splitpoints(0, 1_000_000)
        assert after[:2] == [420_000, 480_000]
        assert after is not before

    def test_in_on_numeric_invalidates_range_memo(self, stats):
        assert stats.n_overlap_range("price", 199_000, 201_000) == 1
        stats.record_query(
            WorkloadQuery.from_sql(
                "SELECT * FROM ListProperty WHERE price IN (200000)"
            )
        )
        assert stats.n_overlap_range("price", 199_000, 201_000) == 2
