"""SIGKILL-under-load crash recovery: the durability tentpole, end to end.

A real `repro serve --async --warm-start` subprocess takes categorize
traffic from the load generator while the test records queries through
the public /record route — then dies by SIGKILL, the one signal no
handler can soften.  The contract under test (ISSUE: crash-safe
serving):

* every /record the server *acked* is in the spill journal on disk
  (journal-before-ack ordering held even mid-kill);
* a warm restart replays the journal and reports it on /healthz, and
  the conservation invariant (published + pending + spilled ==
  recorded) holds over the recovered state;
* the warm tree is byte-identical to a cold in-process rebuild from the
  same CSV + workload + journal (recovery is a no-op semantically);
* the warm boot is visible on /metrics (`repro_serve_warm_start 1`);
* SIGTERM then drains the recovered server to a clean exit 0.
"""

from __future__ import annotations

import json
import re
import shutil
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import PAPER_CONFIG
from repro.data.homes import list_property_schema
from repro.relational.csvio import read_csv
from repro.render.treeview import render_tree
from repro.serving.journal import SpillJournal
from repro.serving.loadgen import connect_with_retry, run_loadgen
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload

SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"

#: Distinct /record payloads — distinct so "which acked query vanished?"
#: has an unambiguous answer.
RECORD_SQLS = [
    f"SELECT * FROM ListProperty WHERE price <= {120000 + 15000 * n}"
    for n in range(12)
]

STARTUP_TIMEOUT_S = 60.0


@pytest.fixture(scope="module")
def data_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash-recovery")
    data, workload = root / "homes.csv", root / "workload.sql"
    assert main(["generate-data", "--rows", "2000", "--out", str(data)]) == 0
    assert main(["generate-workload", "--queries", "600", "--out", str(workload)]) == 0
    return data, workload


def _spawn_server(data: Path, workload: Path, state: Path, cwd: Path):
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--data", str(data),
            "--workload", str(workload),
            "--port", "0",
            "--async",
            "--warm-start", str(state),
            "--batch-size", "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        cwd=cwd,
    )


def _read_banner(process) -> tuple[str, str]:
    banner = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    assert match, f"no address in server banner: {banner!r}"
    return banner, match.group(0)


def _post_records(
    url: str, sqls: list[str] | None = None, table: str | None = None
) -> list[str]:
    """Record every payload; return only the *acked* ones."""
    parts = url.removeprefix("http://").split(":")
    connection = connect_with_retry(
        parts[0], int(parts[1]), timeout_s=STARTUP_TIMEOUT_S
    )
    acked = []
    try:
        for sql in sqls if sqls is not None else RECORD_SQLS:
            payload: dict = {"sql": sql}
            if table is not None:
                payload["table"] = table
            connection.request(
                "POST",
                "/record",
                json.dumps(payload),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            if response.status == 200:
                acked.append(sql)
    finally:
        connection.close()
    return acked


def _journal_contents(state: Path, table: str = "ListProperty") -> list[str]:
    journal = SpillJournal(state / table / "journal")
    try:
        return [sql for _seq, sql in journal.replay(0)]
    finally:
        journal.close()


def _get(url: str, path: str) -> str:
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
        return response.read().decode("utf-8")


def test_sigkill_under_load_then_warm_restart(data_files, tmp_path):
    data, workload = data_files
    state = tmp_path / "state"

    # -- boot cold, get killed under load ------------------------------------
    process = _spawn_server(data, workload, state, tmp_path)
    try:
        banner, url = _read_banner(process)
        assert "cold" in banner

        # Background categorize traffic so the kill lands mid-flight, not
        # on an idle process.
        load_thread = threading.Thread(
            target=run_loadgen,
            args=(url,),
            kwargs={
                "sqls": [SERVE_SQL],
                "clients": 4,
                "requests_per_client": 50,
                "timeout_s": STARTUP_TIMEOUT_S,
            },
            daemon=True,
        )
        load_thread.start()
        acked = _post_records(url)
        assert acked, "no /record was acked before the kill"
    finally:
        process.kill()  # SIGKILL: no handler, no drain, no flush
        process.wait(timeout=30)
    load_thread.join(timeout=STARTUP_TIMEOUT_S)
    assert process.returncode == -signal.SIGKILL

    # -- the journal survived the kill ---------------------------------------
    # Freeze the post-kill state before the warm server checkpoints it.
    frozen = tmp_path / "state-after-kill"
    shutil.copytree(state, frozen)
    journaled = _journal_contents(frozen)
    missing = set(acked) - set(journaled)
    assert not missing, f"acked but not journaled (lost on kill): {missing}"

    # -- warm restart: replay, conserve, converge ----------------------------
    process = _spawn_server(data, workload, state, tmp_path)
    try:
        banner, url = _read_banner(process)
        assert "warm boot" in banner

        health = json.loads(_get(url, "/healthz"))
        durability = health["durability"]
        assert durability["warm_start"] is True
        assert durability["replayed_on_boot"] == len(journaled)
        assert durability["journal_truncated_records"] == 0
        # Conservation across process death: nothing recorded vanished.
        assert (
            health["published"] + health["pending"] + health["spilled"]
            == health["recorded"]
        )
        assert health["recorded"] == len(journaled)

        # The warm tree must equal a cold in-process rebuild over the
        # same inputs: CSV + workload + the journaled queries.
        body = json.dumps({"sql": SERVE_SQL, "render": True})
        request = urllib.request.Request(
            f"{url}/categorize",
            data=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            answer = json.loads(response.read())
        schema = list_property_schema()
        reference = CategorizationService(
            Relation(
                read_csv(schema, data),
                preprocess_workload(
                    Workload.load(workload), schema, PAPER_CONFIG.separation_intervals
                ),
            ),
            batch_size=8,
        )
        for sql in journaled:
            reference.record_query(sql)
        reference.flush()
        expected = reference.categorize(SERVE_SQL)
        assert answer["rung"] == expected.rung
        assert answer["rendering"] == render_tree(expected.tree)

        # The warm boot is observable on the scrape.
        metrics = _get(url, "/metrics")
        assert re.search(
            r"^repro_serve_warm_start(?:\{[^}]*\})? 1(\.0)?$", metrics, re.M
        ), "warm-start gauge missing from /metrics"
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            raise

    # SIGTERM is the graceful path: drain, flush, checkpoint, exit 0.
    assert process.returncode == 0


# -- per-relation durability in a multi-table catalog -------------------------

MOVIES_RECORD_SQLS = [
    f"SELECT * FROM Movies WHERE year >= {1960 + 5 * n}" for n in range(8)
]


def _spawn_catalog_server(state: Path, cwd: Path):
    return subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--dataset", "ListProperty=@homes,rows=1000,workload_queries=400",
            "--dataset", "Movies=@movies,rows=1000,workload_queries=400",
            "--port", "0",
            "--async",
            "--warm-start", str(state),
            "--batch-size", "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        cwd=cwd,
    )


def test_sigkill_with_two_relations_recovers_each_independently(tmp_path):
    """Each relation journals, replays, and snapshots on its own.

    Records land in BOTH tables before the SIGKILL; afterwards each
    table's journal must hold exactly its own acked queries (no
    cross-contamination), and the warm restart must report per-table
    replay counts and conservation on /healthz.
    """
    state = tmp_path / "state"

    process = _spawn_catalog_server(state, tmp_path)
    try:
        banner, url = _read_banner(process)
        assert "cold" in banner
        homes_acked = _post_records(url, RECORD_SQLS, table="ListProperty")
        movies_acked = _post_records(url, MOVIES_RECORD_SQLS, table="Movies")
        assert homes_acked and movies_acked
    finally:
        process.kill()
        process.wait(timeout=30)
    assert process.returncode == -signal.SIGKILL

    # Each relation's journal holds its own acks — and nothing else's.
    frozen = tmp_path / "state-after-kill"
    shutil.copytree(state, frozen)
    homes_journaled = _journal_contents(frozen, "ListProperty")
    movies_journaled = _journal_contents(frozen, "Movies")
    assert set(homes_acked) <= set(homes_journaled)
    assert set(movies_acked) <= set(movies_journaled)
    assert not set(homes_journaled) & set(MOVIES_RECORD_SQLS)
    assert not set(movies_journaled) & set(RECORD_SQLS)

    process = _spawn_catalog_server(state, tmp_path)
    try:
        banner, url = _read_banner(process)
        assert "warm boot" in banner

        health = json.loads(_get(url, "/healthz"))
        assert health["default_table"] == "ListProperty"
        for table, journaled in (
            ("ListProperty", homes_journaled),
            ("Movies", movies_journaled),
        ):
            table_health = health["tables"][table]
            durability = table_health["durability"]
            assert durability["warm_start"] is True, table
            assert durability["replayed_on_boot"] == len(journaled), table
            assert (
                table_health["published"]
                + table_health["pending"]
                + table_health["spilled"]
                == table_health["recorded"]
            ), table
            assert table_health["recorded"] == len(journaled), table

        # The per-table warm boot is observable on the scrape.
        metrics = _get(url, "/metrics")
        for table in ("ListProperty", "Movies"):
            assert re.search(
                r"^repro_serve_warm_start\{[^}]*table=\"%s\"[^}]*\} 1(\.0)?$"
                % table,
                metrics,
                re.M,
            ), f"warm-start gauge missing for {table}"
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            raise

    assert process.returncode == 0
