"""CI telemetry smoke: a real `repro serve` process, loadgen, audit.

The full production path, no shortcuts: the CLI boots an async server
with a telemetry sink in a subprocess, a load generator drives it over
TCP, SIGINT triggers the clean-flush shutdown, and `repro audit
--strict` must reconstruct every sampled request from the sink with
zero orphaned events — with rung/shed/coalesce totals equal to the
scraped /metrics counters.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.serving.loadgen import run_loadgen

SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"
LOG_SQL = "SELECT * FROM ListProperty WHERE bedroomcount = 3"

STARTUP_TIMEOUT_S = 60.0


@pytest.fixture(scope="module")
def data_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("telemetry-smoke")
    data, workload = root / "homes.csv", root / "workload.sql"
    assert main(["generate-data", "--rows", "2000", "--out", str(data)]) == 0
    assert main(["generate-workload", "--queries", "1500", "--out", str(workload)]) == 0
    return data, workload


def _counter(metrics: str, name: str) -> int:
    """Sum a Prometheus counter across its label series."""
    total = 0
    for line in metrics.splitlines():
        match = re.match(rf"{re.escape(name)}(?:{{[^}}]*}})? (\d+)", line)
        if match:
            total += int(match.group(1))
    return total


def test_serve_loadgen_sigint_audit_round_trip(data_files, tmp_path, capsys):
    data, workload = data_files
    sink = tmp_path / "events.jsonl"
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--data", str(data),
            "--workload", str(workload),
            "--port", "0",
            "--async",
            "--telemetry-sink", str(sink),
            "--telemetry-sample", "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        cwd=tmp_path,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        assert match, f"no address in server banner: {banner!r}"
        url = match.group(0)

        load = run_loadgen(
            url,
            sqls=[SERVE_SQL, LOG_SQL],
            clients=4,
            requests_per_client=5,
            timeout_s=STARTUP_TIMEOUT_S,
        )
        assert load.errors == 0
        assert load.responses == 20

        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
            metrics = response.read().decode("utf-8")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            raise

    assert process.returncode == 0
    assert sink.exists(), "clean shutdown must flush the sink"

    # Strict audit: every sampled request reconstructs, nothing orphaned.
    assert main(["audit", str(sink), "--format", "json", "--strict"]) == 0
    report = json.loads(capsys.readouterr().out)["report"]
    assert report["requests"] == load.responses
    assert report["partial"] == 0
    assert report["orphaned_events"] == 0

    # The sink and the scrape tell the same story.
    assert report["shed"] == _counter(metrics, "repro_aserve_shed_total")
    assert report["coalesced"] == _counter(metrics, "repro_aserve_coalesced_total")
    assert sum(report["rungs"].values()) == _counter(metrics, "repro_serve_rung_total")
    assert report["shed"] == load.status_counts.get(503, 0)
    assert report["coalesced"] == load.coalesced
