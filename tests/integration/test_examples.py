"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed end to
end (the heavyweight ones are exercised indirectly — they wrap the same
study harness the benchmark suite runs at full scale).
"""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "compare_techniques.py",
        "interactive_exploration.py",
        "custom_dataset.py",
        "star_schema.py",
        "reproduce_paper.py",
    } <= names


def run_example(name: str, capsys, argv=()) -> str:
    """Execute one example as __main__ and return its stdout."""
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_custom_dataset_example_runs(capsys):
    out = run_example("custom_dataset.py", capsys)
    assert "attribute usage fractions" in out
    assert "ALL [" in out
    assert "estimated exploration cost" in out
