"""End-to-end integration: the full pipeline from SQL string to rendered tree.

Mirrors the README quickstart: generate data, generate a workload, persist
it as a SQL log file, preprocess, run a user query, categorize with all
three techniques, estimate costs, replay an exploration, and render.
"""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.explore.exploration import replay_all, replay_one
from repro.render.treeview import render_tree, summarize_tree
from repro.sql.compiler import parse_query
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload


HOMES_QUERY = (
    "SELECT * FROM ListProperty WHERE neighborhood IN "
    "('Queen Anne, WA', 'Capitol Hill, WA', 'Ballard, WA', 'Fremont, WA', "
    "'Greenwood, WA', 'West Seattle, WA') AND price BETWEEN 200000 AND 500000"
)


@pytest.fixture(scope="module")
def pipeline(request, tmp_path_factory):
    homes = request.getfixturevalue("homes_table")
    workload = request.getfixturevalue("workload")

    # Persist and reload the workload: the count tables must be buildable
    # from nothing but the logged SQL strings (Section 4.2's premise).
    log_path = tmp_path_factory.mktemp("logs") / "workload.sql"
    workload.save(log_path)
    reloaded = Workload.load(log_path)

    statistics = preprocess_workload(
        reloaded, homes.schema, PAPER_CONFIG.separation_intervals
    )
    query = parse_query(HOMES_QUERY)
    rows = query.execute(homes)
    return homes, statistics, query, rows


class TestPipeline:
    def test_result_set_nonempty(self, pipeline):
        _, _, _, rows = pipeline
        assert len(rows) > PAPER_CONFIG.max_tuples_per_category

    def test_all_techniques_produce_valid_trees(self, pipeline):
        _, statistics, query, rows = pipeline
        for factory in (CostBasedCategorizer, AttrCostCategorizer, NoCostCategorizer):
            tree = factory(statistics).categorize(rows, query)
            tree.validate()
            assert tree.result_size == len(rows)

    def test_cost_based_minimizes_estimated_cost(self, pipeline):
        _, statistics, query, rows = pipeline
        model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
        costs = {}
        for factory in (CostBasedCategorizer, AttrCostCategorizer, NoCostCategorizer):
            tree = factory(statistics).categorize(rows, query)
            costs[tree.technique] = model.tree_cost_all(tree)
        assert costs["cost-based"] == min(costs.values())

    def test_categorization_beats_no_categorization(self, pipeline):
        _, statistics, query, rows = pipeline
        tree = CostBasedCategorizer(statistics).categorize(rows, query)
        exploration = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Ballard, WA') "
            "AND price BETWEEN 250000 AND 350000 AND bedroomcount BETWEEN 2 AND 3"
        )
        replay = replay_all(tree, exploration)
        # Without categorization the user examines the whole result set.
        assert replay.items_examined < len(rows)

    def test_one_scenario_cheaper_than_all(self, pipeline):
        _, statistics, query, rows = pipeline
        tree = CostBasedCategorizer(statistics).categorize(rows, query)
        exploration = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Ballard, WA') "
            "AND price BETWEEN 250000 AND 350000"
        )
        one = replay_one(tree, exploration)
        all_ = replay_all(tree, exploration)
        assert one.items_examined <= all_.items_examined

    def test_estimated_and_actual_same_order_of_magnitude(self, pipeline):
        _, statistics, query, rows = pipeline
        model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
        tree = CostBasedCategorizer(statistics).categorize(rows, query)
        estimated = model.tree_cost_all(tree)
        exploration = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE neighborhood IN "
            "('Ballard, WA', 'Fremont, WA') AND price BETWEEN 250000 AND 400000 "
            "AND bedroomcount BETWEEN 2 AND 4"
        )
        actual = replay_all(tree, exploration).items_examined
        assert estimated / 30 < actual < estimated * 30

    def test_render_is_displayable(self, pipeline):
        _, statistics, query, rows = pipeline
        tree = CostBasedCategorizer(statistics).categorize(rows, query)
        text = render_tree(tree, max_depth=2, max_children=5)
        assert text.startswith("ALL")
        assert len(text.splitlines()) > 3
        summary = summarize_tree(tree)
        assert "technique=cost-based" in summary

    def test_leaf_sizes_respect_m(self, pipeline):
        _, statistics, query, rows = pipeline
        tree = CostBasedCategorizer(statistics).categorize(rows, query)
        # With six retained attributes on this result size, every leaf
        # should shrink to at most M tuples.
        oversized = [l for l in tree.leaves() if l.tuple_count > 20]
        assert len(oversized) <= tree.category_count() * 0.05
