"""Tests for AST → relational-predicate compilation."""

import pytest

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.sql.ast_nodes import BetweenCondition, InCondition
from repro.sql.errors import SqlError
from repro.sql.compiler import compile_condition, parse_query


class TestParseQuery:
    def test_in_compiles_to_in_predicate(self):
        query = parse_query("SELECT * FROM T WHERE city IN ('a', 'b')")
        assert isinstance(query.predicate, InPredicate)
        assert query.predicate.values == frozenset({"a", "b"})

    def test_between_compiles_to_inclusive_range(self):
        query = parse_query("SELECT * FROM T WHERE price BETWEEN 100 AND 200")
        pred = query.predicate
        assert isinstance(pred, RangePredicate)
        assert pred.high_inclusive
        assert (pred.low, pred.high) == (100.0, 200.0)

    def test_comparison_compiles(self):
        query = parse_query("SELECT * FROM T WHERE price <= 100")
        assert isinstance(query.predicate, ComparisonPredicate)

    def test_conjunction_compiles(self):
        query = parse_query(
            "SELECT * FROM T WHERE city IN ('a') AND price <= 100"
        )
        assert isinstance(query.predicate, Conjunction)
        assert len(query.predicate.parts) == 2

    def test_no_where_is_true(self):
        assert isinstance(parse_query("SELECT * FROM T").predicate, TruePredicate)

    def test_projection_carried(self):
        query = parse_query("SELECT city, price FROM T")
        assert query.projection == ("city", "price")

    def test_table_name_carried(self):
        assert parse_query("SELECT * FROM ListProperty").table_name == "ListProperty"


class TestCompileCondition:
    def test_in_condition(self):
        pred = compile_condition(InCondition("city", ("a",)))
        assert isinstance(pred, InPredicate)

    def test_unknown_condition_type_rejected(self):
        class Mystery:
            attribute = "x"

        with pytest.raises(SqlError, match="unknown condition"):
            compile_condition(Mystery())

    def test_non_numeric_between_bounds_rejected(self):
        condition = BetweenCondition("price", "cheap", "expensive")
        with pytest.raises(SqlError, match="must be numeric") as excinfo:
            compile_condition(condition)
        assert "price" in excinfo.value.snippet

    def test_numeric_string_between_bounds_still_accepted(self):
        pred = compile_condition(BetweenCondition("price", "100", "200"))
        assert isinstance(pred, RangePredicate)
        assert (pred.low, pred.high) == (100.0, 200.0)


class TestEndToEndSemantics:
    def test_parse_and_execute(self):
        from repro.relational.schema import Attribute, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import DataType

        schema = TableSchema(
            "T", (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT))
        )
        table = Table(schema)
        table.extend(
            [
                {"city": "a", "price": 150},
                {"city": "a", "price": 250},
                {"city": "b", "price": 150},
            ]
        )
        query = parse_query(
            "SELECT * FROM T WHERE city IN ('a') AND price BETWEEN 100 AND 200"
        )
        result = query.execute(table)
        assert len(result) == 1
        assert result.to_dicts()[0] == {"city": "a", "price": 150}
