"""Tests for the SQL parser."""

import pytest

from repro.sql.ast_nodes import (
    BetweenCondition,
    ComparisonCondition,
    InCondition,
)
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse


class TestSelectList:
    def test_star(self):
        assert parse("SELECT * FROM Homes").columns is None

    def test_named_columns(self):
        stmt = parse("SELECT city, price FROM Homes")
        assert stmt.columns == ("city", "price")

    def test_table_name(self):
        assert parse("SELECT * FROM ListProperty").table == "ListProperty"


class TestConditions:
    def test_no_where(self):
        assert parse("SELECT * FROM T").conditions == ()

    def test_in_condition(self):
        stmt = parse("SELECT * FROM T WHERE city IN ('Seattle', 'Bellevue')")
        (cond,) = stmt.conditions
        assert isinstance(cond, InCondition)
        assert cond.values == ("Seattle", "Bellevue")

    def test_in_single_value(self):
        stmt = parse("SELECT * FROM T WHERE city IN ('Seattle')")
        assert stmt.conditions[0].values == ("Seattle",)

    def test_numeric_in(self):
        stmt = parse("SELECT * FROM T WHERE zipcode IN (98101, 98102)")
        assert stmt.conditions[0].values == (98101, 98102)

    def test_between(self):
        stmt = parse("SELECT * FROM T WHERE price BETWEEN 200000 AND 300000")
        (cond,) = stmt.conditions
        assert isinstance(cond, BetweenCondition)
        assert (cond.low, cond.high) == (200_000, 300_000)

    def test_between_with_k_suffix(self):
        stmt = parse("SELECT * FROM T WHERE price BETWEEN 200K AND 300K")
        assert stmt.conditions[0].low == 200_000

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_comparisons(self, op):
        stmt = parse(f"SELECT * FROM T WHERE price {op} 5")
        (cond,) = stmt.conditions
        assert isinstance(cond, ComparisonCondition)
        assert cond.op == op

    def test_diamond_normalized_to_bang_equals(self):
        stmt = parse("SELECT * FROM T WHERE price <> 5")
        assert stmt.conditions[0].op == "!="

    def test_conjunction(self):
        stmt = parse(
            "SELECT * FROM T WHERE city IN ('a') AND price <= 100 "
            "AND bedroomcount BETWEEN 2 AND 4"
        )
        assert len(stmt.conditions) == 3
        assert stmt.condition_attributes() == ("city", "price", "bedroomcount")

    def test_condition_attributes_dedupe(self):
        stmt = parse("SELECT * FROM T WHERE price >= 1 AND price <= 5")
        assert stmt.condition_attributes() == ("price",)


class TestDiscardedClauses:
    def test_order_by_ignored(self):
        stmt = parse("SELECT * FROM T WHERE price <= 5 ORDER BY price DESC")
        assert len(stmt.conditions) == 1

    def test_limit_ignored(self):
        stmt = parse("SELECT * FROM T LIMIT 50")
        assert stmt.conditions == ()

    def test_order_by_then_limit(self):
        stmt = parse("SELECT * FROM T ORDER BY price ASC LIMIT 10")
        assert stmt.table == "T"


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError, match="expected FROM"):
            parse("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse("SELECT * FROM T extra")

    def test_bad_condition(self):
        with pytest.raises(SqlSyntaxError, match="expected IN, BETWEEN"):
            parse("SELECT * FROM T WHERE price")

    def test_in_without_parens(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM T WHERE city IN 'a'")

    def test_between_missing_and(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM T WHERE price BETWEEN 1 2")

    def test_non_literal_in_list(self):
        with pytest.raises(SqlSyntaxError, match="expected a literal"):
            parse("SELECT * FROM T WHERE city IN (foo)")

    def test_empty_input(self):
        with pytest.raises(SqlSyntaxError):
            parse("")
