"""Tests for query → SQL formatting and the parse/format round-trip."""

import math

import pytest

from repro.relational.expressions import (
    Conjunction,
    InPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery
from repro.sql.compiler import parse_query
from repro.sql.formatter import format_literal, format_predicate, format_query


class TestFormatLiteral:
    def test_int(self):
        assert format_literal(250_000) == "250000"

    def test_integral_float_rendered_as_int(self):
        assert format_literal(250_000.0) == "250000"

    def test_string_quoted(self):
        assert format_literal("Seattle") == "'Seattle'"

    def test_quote_escaped(self):
        assert format_literal("O'Brien") == "'O''Brien'"

    def test_bool(self):
        assert format_literal(True) == "1"


class TestFormatPredicate:
    def test_true_is_empty(self):
        assert format_predicate(TruePredicate()) == ""

    def test_in(self):
        text = format_predicate(InPredicate("city", ["b", "a"]))
        assert text == "city IN ('a', 'b')"

    def test_closed_range_is_between(self):
        text = format_predicate(RangePredicate("price", 100, 200))
        assert text == "price BETWEEN 100 AND 200"

    def test_half_open_range(self):
        text = format_predicate(
            RangePredicate("price", 100, 200, high_inclusive=False)
        )
        assert text == "price >= 100 AND price < 200"

    def test_lower_only(self):
        text = format_predicate(RangePredicate("price", 100, math.inf))
        assert text == "price >= 100"

    def test_upper_only(self):
        text = format_predicate(RangePredicate("price", -math.inf, 200))
        assert text == "price <= 200"

    def test_conjunction(self):
        text = format_predicate(
            Conjunction(
                [InPredicate("city", ["a"]), RangePredicate("price", 1, 2)]
            )
        )
        assert " AND " in text


class TestFormatQuery:
    def test_select_star(self):
        assert format_query(SelectQuery("T")) == "SELECT * FROM T"

    def test_projection(self):
        query = SelectQuery("T", projection=("city",))
        assert format_query(query) == "SELECT city FROM T"

    def test_with_where(self):
        query = SelectQuery("T", InPredicate("city", ["a"]))
        assert format_query(query) == "SELECT * FROM T WHERE city IN ('a')"


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM T WHERE city IN ('Seattle', 'Queen Anne, WA')",
        "SELECT * FROM T WHERE price BETWEEN 200000 AND 300000",
        "SELECT * FROM T WHERE price <= 500000",
        "SELECT * FROM T WHERE price >= 100000",
        "SELECT * FROM T WHERE city IN ('a') AND price BETWEEN 1 AND 2",
        "SELECT city, price FROM T WHERE bedroomcount BETWEEN 2 AND 4",
    ],
)
def test_round_trip_is_fixed_point(sql):
    """format(parse(x)) re-parses to a query formatting identically."""
    once = format_query(parse_query(sql))
    twice = format_query(parse_query(once))
    assert once == twice
