"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM where")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifier(self):
        token = tokenize("ListProperty")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "ListProperty"

    def test_star_comma_parens(self):
        assert kinds("*, ( )")[:-1] == [
            TokenType.STAR,
            TokenType.COMMA,
            TokenType.LPAREN,
            TokenType.RPAREN,
        ]

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestOperators:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!=", "<>"])
    def test_each_operator(self, op):
        token = tokenize(f"price {op} 5")[1]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_longest_match(self):
        # "<=" must not lex as "<" then "=".
        tokens = tokenize("a <= 1")
        assert tokens[1].value == "<="


class TestNumbers:
    def test_integer(self):
        assert values("123") == [123]

    def test_decimal(self):
        assert values("2.5") == [2.5]

    def test_k_suffix(self):
        assert values("250K") == [250_000]

    def test_lowercase_k_suffix(self):
        assert values("250k") == [250_000]

    def test_m_suffix(self):
        assert values("1M") == [1_000_000]

    def test_decimal_with_suffix(self):
        assert values("1.5M") == [1_500_000.0]


class TestStrings:
    def test_simple_string(self):
        assert values("'Seattle'") == ["Seattle"]

    def test_escaped_quote(self):
        assert values("'O''Brien'") == ["O'Brien"]

    def test_string_with_comma_and_spaces(self):
        assert values("'Queen Anne, WA'") == ["Queen Anne, WA"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")


class TestQuotedIdentifiers:
    def test_quoted_identifier(self):
        token = tokenize('"year built"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "year built"

    def test_unterminated_identifier_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("price @ 5")

    def test_error_carries_position(self):
        try:
            tokenize("price @ 5")
        except SqlSyntaxError as exc:
            assert exc.position == 6
