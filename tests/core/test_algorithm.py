"""Tests for the cost-based level-by-level categorizer (Figure 6)."""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG


@pytest.fixture(scope="module")
def tree(homes_table_module, statistics_module, seattle_query_module):
    rows = seattle_query_module.execute(homes_table_module)
    categorizer = CostBasedCategorizer(statistics_module, PAPER_CONFIG)
    return categorizer.categorize(rows, seattle_query_module)


# Module-scoped clones of the session fixtures so the expensive tree is
# built once for this file.
@pytest.fixture(scope="module")
def homes_table_module(request):
    return request.getfixturevalue("homes_table")


@pytest.fixture(scope="module")
def statistics_module(request):
    return request.getfixturevalue("statistics")


@pytest.fixture(scope="module")
def seattle_query_module(request):
    return request.getfixturevalue("seattle_query")


class TestStructure:
    def test_tree_is_valid(self, tree):
        tree.validate()

    def test_technique_name(self, tree):
        assert tree.technique == "cost-based"

    def test_no_attribute_repeats(self, tree):
        attributes = tree.level_attributes()
        assert len(attributes) == len(set(attributes))

    def test_only_retained_attributes_used(self, tree, statistics_module):
        for attribute in tree.level_attributes():
            assert statistics_module.usage_fraction(attribute) >= 0.4

    def test_root_holds_whole_result(self, tree, homes_table_module, seattle_query_module):
        expected = len(seattle_query_module.execute(homes_table_module))
        assert tree.result_size == expected

    def test_leaves_respect_m_or_attributes_exhausted(self, tree):
        # A leaf larger than M is only legal when every retained attribute
        # was consumed on its path or could not refine it.
        attributes_available = 6
        for leaf in tree.leaves():
            if leaf.tuple_count > PAPER_CONFIG.max_tuples_per_category:
                assert leaf.level <= attributes_available

    def test_categorical_children_ordered_by_occ(self, tree, statistics_module):
        occ = statistics_module.occurrence_counts("neighborhood")
        for node in tree.nodes():
            if node.child_attribute == "neighborhood":
                counts = [
                    occ.occ(child.label.single_value) for child in node.children
                ]
                assert counts == sorted(counts, reverse=True)

    def test_numeric_children_ascending(self, tree):
        for node in tree.nodes():
            if not node.children:
                continue
            labels = [c.label for c in node.children]
            if hasattr(labels[0], "low"):
                lows = [l.low for l in labels]
                assert lows == sorted(lows)


class TestTermination:
    def test_small_result_yields_leaf_root(self, homes_table_module, statistics_module):
        from repro.relational.expressions import RangePredicate
        from repro.relational.query import SelectQuery

        query = SelectQuery("ListProperty", RangePredicate("price", 0, 35_000))
        rows = query.execute(homes_table_module)
        assert len(rows) <= 20
        tree = CostBasedCategorizer(statistics_module).categorize(rows, query)
        assert tree.root.is_leaf

    def test_max_levels_respected(self, homes_table_module, statistics_module, seattle_query_module):
        config = PAPER_CONFIG.with_overrides(max_levels=2)
        rows = seattle_query_module.execute(homes_table_module)
        tree = CostBasedCategorizer(statistics_module, config).categorize(
            rows, seattle_query_module
        )
        assert tree.depth() <= 2

    def test_smaller_m_gives_deeper_or_equal_trees(
        self, homes_table_module, statistics_module, seattle_query_module
    ):
        rows = seattle_query_module.execute(homes_table_module)
        shallow = CostBasedCategorizer(
            statistics_module, PAPER_CONFIG.with_overrides(max_tuples_per_category=100)
        ).categorize(rows, seattle_query_module)
        deep = CostBasedCategorizer(
            statistics_module, PAPER_CONFIG.with_overrides(max_tuples_per_category=10)
        ).categorize(rows, seattle_query_module)
        assert deep.node_count() >= shallow.node_count()


class TestCostOptimality:
    def test_chosen_level1_attribute_minimizes_one_level_cost(
        self, tree, statistics_module, homes_table_module, seattle_query_module
    ):
        """Rebuild every candidate level-1 partitioning and check the
        algorithm's choice has minimal COST_A."""
        from repro.core.algorithm import CostBasedCategorizer as CBC

        categorizer = CBC(statistics_module, PAPER_CONFIG)
        rows = seattle_query_module.execute(homes_table_module)
        root_like = tree.root
        candidates = categorizer._candidate_attributes(rows, seattle_query_module)
        costs = {}
        for attribute in candidates:
            partitioner = categorizer._make_partitioner(
                attribute, seattle_query_module, rows
            )
            partitioning = partitioner.partition(rows)
            costs[attribute] = categorizer._level_cost(
                [root_like], attribute, [partitioning]
            )
        chosen = tree.level_attributes()[0]
        assert costs[chosen] == min(costs.values())

    def test_estimated_cost_beats_baselines_on_average(
        self, statistics_module, homes_table_module, seattle_query_module
    ):
        from repro.core.baselines import NoCostCategorizer
        from repro.core.cost import CostModel
        from repro.core.probability import ProbabilityEstimator

        rows = seattle_query_module.execute(homes_table_module)
        cost_model = CostModel(ProbabilityEstimator(statistics_module), PAPER_CONFIG)
        cost_based = CostBasedCategorizer(statistics_module).categorize(
            rows, seattle_query_module
        )
        no_cost = NoCostCategorizer(statistics_module, order_seed=99).categorize(
            rows, seattle_query_module
        )
        assert cost_model.tree_cost_all(cost_based) <= cost_model.tree_cost_all(no_cost)


class TestEdgeCases:
    def test_categorize_without_query(self, homes_table_module, statistics_module):
        rows = homes_table_module.all_rows()
        tree = CostBasedCategorizer(statistics_module).categorize(rows)
        tree.validate()
        assert tree.depth() >= 1

    def test_empty_result_set(self, homes_table_module, statistics_module):
        from repro.relational.expressions import InPredicate
        from repro.relational.query import SelectQuery

        query = SelectQuery(
            "ListProperty", InPredicate("neighborhood", ["Nowhere, XX"])
        )
        rows = query.execute(homes_table_module)
        tree = CostBasedCategorizer(statistics_module).categorize(rows, query)
        assert tree.root.is_leaf and tree.result_size == 0

    def test_empty_workload_statistics(self, homes_table_module, seattle_query_module):
        from repro.workload.log import Workload
        from repro.workload.preprocess import preprocess_workload

        empty_stats = preprocess_workload(Workload([]), homes_table_module.schema)
        rows = seattle_query_module.execute(homes_table_module)
        tree = CostBasedCategorizer(empty_stats).categorize(rows, seattle_query_module)
        # Every attribute is eliminated (NAttr/N undefined -> 0), so the
        # tree degenerates to a bare root — no workload, no categorization.
        assert tree.root.is_leaf


def _tree_shape(tree):
    def node_shape(node):
        return (
            str(node.label),
            node.tuple_count,
            tuple(node_shape(child) for child in node.children),
        )

    return node_shape(tree.root)


class TestLazyPartitionings:
    def test_cached_and_uncached_trees_identical(
        self, homes_table_module, statistics_module, seattle_query_module
    ):
        rows = seattle_query_module.execute(homes_table_module)
        cached = CostBasedCategorizer(statistics_module, PAPER_CONFIG).categorize(
            rows, seattle_query_module
        )
        uncached = CostBasedCategorizer(
            statistics_module, PAPER_CONFIG.with_overrides(enable_caches=False)
        ).categorize(rows, seattle_query_module)
        assert _tree_shape(cached) == _tree_shape(uncached)

    def test_no_cost_baseline_skips_unneeded_partitionings(
        self, homes_table_module, statistics_module, seattle_query_module
    ):
        from repro import perf
        from repro.core.baselines import NoCostCategorizer

        rows = seattle_query_module.execute(homes_table_module)
        perf.reset()
        perf.enable()
        try:
            NoCostCategorizer(statistics_module, PAPER_CONFIG).categorize(
                rows, seattle_query_module
            )
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        # No-Cost takes the first refining attribute per level: at least one
        # candidate partitioning per level is never materialized.
        assert counters.get("categorize.partitionings_avoided", 0) > 0

    def test_cost_based_still_examines_every_candidate(
        self, homes_table_module, statistics_module, seattle_query_module
    ):
        from repro import perf

        rows = seattle_query_module.execute(homes_table_module)
        perf.reset()
        perf.enable()
        try:
            CostBasedCategorizer(statistics_module, PAPER_CONFIG).categorize(
                rows, seattle_query_module
            )
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        # The argmin inspects every available attribute each level, so
        # nothing can be skipped — laziness must not change that.
        assert counters.get("categorize.partitionings_avoided", 1) == 0
        assert counters.get("categorize.partitionings_computed", 0) > 0
