"""Tests for category ordering (Section 5.1.2 heuristic and Appendix A)."""

import itertools

import pytest

from repro.core.partition.ordering import (
    expected_cost_one_of_ordering,
    order_by_probability,
    order_optimal_one,
)


class TestProbabilityHeuristic:
    def test_descending(self):
        items = ["a", "b", "c"]
        assert order_by_probability(items, [0.1, 0.9, 0.5]) == ["b", "c", "a"]

    def test_stable_on_ties(self):
        items = ["first", "second"]
        assert order_by_probability(items, [0.5, 0.5]) == ["first", "second"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            order_by_probability(["a"], [0.5, 0.5])


class TestOptimalOrdering:
    def test_increasing_score(self):
        # scores: a -> 1/0.5 + 10 = 12, b -> 1/0.25 + 2 = 6, c -> 1/1 + 20 = 21
        items = ["a", "b", "c"]
        result = order_optimal_one(items, [0.5, 0.25, 1.0], [10, 2, 20])
        assert result == ["b", "a", "c"]

    def test_zero_probability_sorts_last(self):
        items = ["dead", "live"]
        assert order_optimal_one(items, [0.0, 0.1], [0, 100]) == ["live", "dead"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            order_optimal_one(["a"], [0.5], [1, 2])

    def test_optimal_beats_every_permutation(self):
        """Exhaustively verify the Appendix A claim for small inputs."""
        probabilities = [0.9, 0.3, 0.6, 0.15]
        costs = [40.0, 5.0, 12.0, 80.0]
        indices = list(range(4))
        ordered = order_optimal_one(indices, probabilities, costs)
        optimal_cost = expected_cost_one_of_ordering(
            [probabilities[i] for i in ordered], [costs[i] for i in ordered]
        )
        for permutation in itertools.permutations(indices):
            cost = expected_cost_one_of_ordering(
                [probabilities[i] for i in permutation],
                [costs[i] for i in permutation],
            )
            assert optimal_cost <= cost + 1e-9

    def test_heuristic_matches_optimal_when_costs_equal(self):
        """The P-descending heuristic is exact under equal CostOne values
        (the assumption Section 5.1.2 makes explicit)."""
        probabilities = [0.2, 0.8, 0.5, 0.05]
        items = list(range(4))
        heuristic = order_by_probability(items, probabilities)
        optimal = order_optimal_one(items, probabilities, [7.0] * 4)
        assert heuristic == optimal


class TestExpectedCost:
    def test_hand_computed(self):
        # i=1: 0.5*(1 + 10) = 5.5 ; i=2: 0.5*1.0*(2 + 4) = 3.0
        cost = expected_cost_one_of_ordering([0.5, 1.0], [10.0, 4.0])
        assert cost == pytest.approx(8.5)

    def test_label_cost_scales_positions(self):
        base = expected_cost_one_of_ordering([1.0], [0.0], label_cost=1.0)
        doubled = expected_cost_one_of_ordering([1.0], [0.0], label_cost=2.0)
        assert doubled == 2 * base

    def test_empty_is_zero(self):
        assert expected_cost_one_of_ordering([], []) == 0.0
