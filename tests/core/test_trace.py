"""Tests for the per-query decision trace (the categorizer's explain)."""

import json
import math

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import NoCostCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.trace import DecisionTrace, LevelTrace


@pytest.fixture(scope="module")
def traced_tree(request):
    statistics = request.getfixturevalue("statistics")
    seattle_query = request.getfixturevalue("seattle_query")
    seattle_rows = request.getfixturevalue("seattle_rows")
    categorizer = CostBasedCategorizer(statistics, PAPER_CONFIG)
    return categorizer.categorize(seattle_rows, seattle_query, collect_trace=True)


class TestCollection:
    def test_off_by_default(self, statistics, seattle_query, seattle_rows):
        categorizer = CostBasedCategorizer(statistics, PAPER_CONFIG)
        tree = categorizer.categorize(seattle_rows, seattle_query)
        assert tree.decision_trace is None

    def test_trace_attached_when_requested(self, traced_tree):
        assert isinstance(traced_tree.decision_trace, DecisionTrace)
        assert traced_tree.decision_trace.technique == "cost-based"

    def test_chosen_attributes_match_the_tree(self, traced_tree):
        trace = traced_tree.decision_trace
        assert trace.chosen_attributes() == traced_tree.level_attributes()

    def test_tracing_does_not_change_the_tree(
        self, statistics, seattle_query, seattle_rows
    ):
        categorizer = CostBasedCategorizer(statistics, PAPER_CONFIG)
        plain = categorizer.categorize(seattle_rows, seattle_query)
        assert plain.level_attributes() == (
            categorizer
            .categorize(seattle_rows, seattle_query, collect_trace=True)
            .level_attributes()
        )


class TestLevelContents:
    def test_chosen_attribute_minimizes_cost_all(self, traced_tree):
        for level in traced_tree.decision_trace.levels:
            if level.chosen is None:
                continue
            viable = [c for c in level.candidates if c.viable]
            best = min(viable, key=lambda c: c.cost_all)
            assert level.chosen == best.attribute
            assert level.candidate(level.chosen).cost_all == best.cost_all

    def test_costs_are_positive_and_ordered(self, traced_tree):
        for level in traced_tree.decision_trace.levels:
            for candidate in level.candidates:
                if not candidate.viable:
                    continue
                assert candidate.cost_all > 0
                assert candidate.cost_one > 0
                # browsing everything costs at least as much as finding one
                assert candidate.cost_one <= candidate.cost_all

    def test_node_evaluations_expose_probability_inputs(self, traced_tree):
        level = traced_tree.decision_trace.levels[0]
        for candidate in level.candidates:
            for node in candidate.nodes:
                assert 0.0 <= node.pw <= 1.0
                assert 0.0 <= node.p_node <= 1.0
                for p in node.child_probabilities:
                    assert 0.0 <= p <= 1.0

    def test_eliminated_attributes_below_threshold(self, traced_tree):
        trace = traced_tree.decision_trace
        assert trace.eliminated, "the default workload eliminates rare attributes"
        for eliminated in trace.eliminated:
            assert eliminated.usage_fraction < trace.elimination_threshold
        candidate_names = {
            c.attribute for level in trace.levels for c in level.candidates
        }
        assert candidate_names.isdisjoint(e.attribute for e in trace.eliminated)

    def test_candidate_lookup_raises_on_unknown(self, traced_tree):
        level = traced_tree.decision_trace.levels[0]
        with pytest.raises(KeyError):
            level.candidate("not-an-attribute")


class TestBaselineTraces:
    def test_baselines_get_traces_too(self, statistics, seattle_query, seattle_rows):
        categorizer = NoCostCategorizer(statistics, PAPER_CONFIG)
        tree = categorizer.categorize(seattle_rows, seattle_query, collect_trace=True)
        trace = tree.decision_trace
        assert trace.technique == categorizer.name
        assert trace.chosen_attributes() == list(tree.level_attributes())
        # the trace still scores candidates with the cost model, so a
        # baseline's choice need not minimize cost_all — but costs exist
        assert any(c.viable for level in trace.levels for c in level.candidates)


class TestSerialization:
    def test_as_dict_is_json_ready(self, traced_tree):
        payload = json.dumps(traced_tree.decision_trace.as_dict())
        data = json.loads(payload)
        assert data["technique"] == "cost-based"
        assert len(data["levels"]) == len(traced_tree.decision_trace.levels)
        for level in data["levels"]:
            assert {"level", "candidates", "chosen"} <= set(level)

    def test_render_shows_costs_and_choice(self, traced_tree):
        text = traced_tree.decision_trace.render()
        assert "CostAll" in text
        assert "CostOne" in text
        assert "<- chosen" in text
        for attribute in traced_tree.decision_trace.chosen_attributes():
            assert attribute in text

    def test_render_empty_trace(self):
        trace = DecisionTrace(technique="cost-based", elimination_threshold=0.4)
        assert "no categorization decisions" in trace.render()

    def test_nonviable_candidates_render_as_dashes(self):
        trace = DecisionTrace(technique="cost-based", elimination_threshold=0.4)
        from repro.core.trace import CandidateDecision

        trace.levels.append(
            LevelTrace(
                level=1,
                oversized_nodes=1,
                oversized_tuples=50,
                candidates=(
                    CandidateDecision(
                        attribute="price",
                        cost_all=math.inf,
                        cost_one=math.inf,
                        usage_fraction=0.5,
                        category_count=0,
                        refined_nodes=0,
                        nodes=(),
                        nodes_truncated=False,
                    ),
                ),
                chosen=None,
            )
        )
        text = trace.render()
        assert "no attribute chosen" in text
        assert "price" in text
