"""Tests for the No-Cost and Attr-Cost baselines (Section 6.1)."""

import pytest

from repro.core.baselines import (
    ArbitraryOrderCategoricalPartitioner,
    AttrCostCategorizer,
    EquiWidthNumericPartitioner,
    NoCostCategorizer,
)
from repro.core.config import PAPER_CONFIG, PAPER_RETAINED_ATTRIBUTES


@pytest.fixture(scope="module")
def rows(request):
    table = request.getfixturevalue("homes_table")
    query = request.getfixturevalue("seattle_query")
    return query.execute(table)


class TestNoCost:
    def test_valid_tree(self, rows, statistics, seattle_query):
        tree = NoCostCategorizer(statistics).categorize(rows, seattle_query)
        tree.validate()
        assert tree.technique == "no-cost"

    def test_attributes_come_from_predefined_set(self, rows, statistics, seattle_query):
        tree = NoCostCategorizer(statistics).categorize(rows, seattle_query)
        assert set(tree.level_attributes()) <= set(PAPER_RETAINED_ATTRIBUTES)

    def test_order_seed_none_uses_predefined_order(self, rows, statistics, seattle_query):
        tree = NoCostCategorizer(statistics, order_seed=None).categorize(
            rows, seattle_query
        )
        used = tree.level_attributes()
        # With no shuffle the first predefined attribute that refines leads.
        expected = [a for a in PAPER_RETAINED_ATTRIBUTES]
        assert used[0] == next(a for a in expected if a in used)

    def test_shuffled_orders_vary_across_calls(self, rows, statistics, seattle_query):
        categorizer = NoCostCategorizer(statistics, order_seed=3)
        first = categorizer.categorize(rows, seattle_query).level_attributes()
        orders = {tuple(first)}
        for _ in range(5):
            orders.add(
                tuple(categorizer.categorize(rows, seattle_query).level_attributes())
            )
        assert len(orders) > 1

    def test_custom_attribute_set(self, rows, statistics, seattle_query):
        categorizer = NoCostCategorizer(
            statistics, attribute_set=("price",), order_seed=None
        )
        tree = categorizer.categorize(rows, seattle_query)
        assert tree.level_attributes() == ["price"]


class TestAttrCost:
    def test_valid_tree(self, rows, statistics, seattle_query):
        tree = AttrCostCategorizer(statistics).categorize(rows, seattle_query)
        tree.validate()
        assert tree.technique == "attr-cost"

    def test_uses_naive_partitionings(self, rows, statistics, seattle_query):
        tree = AttrCostCategorizer(statistics).categorize(rows, seattle_query)
        config = PAPER_CONFIG
        for node in tree.nodes():
            if not node.children:
                continue
            label = node.children[0].label
            if hasattr(label, "low"):
                # Equi-width buckets sit on the 5x-separation-interval grid.
                width = 5 * config.separation_interval(label.attribute)
                for child in node.children[:-1]:
                    assert child.label.high % width == pytest.approx(0.0)

    def test_deterministic_attribute_choice(self, rows, statistics, seattle_query):
        a = AttrCostCategorizer(statistics).categorize(rows, seattle_query)
        b = AttrCostCategorizer(statistics).categorize(rows, seattle_query)
        assert a.level_attributes() == b.level_attributes()


class TestNoCostPartitioners:
    def test_arbitrary_order_is_value_sorted(self, rows):
        partitioner = ArbitraryOrderCategoricalPartitioner("neighborhood")
        parts = partitioner.partition(rows)
        values = [label.single_value for label, _ in parts]
        assert values == sorted(values, key=repr)

    def test_arbitrary_respects_query_universe(self, rows, seattle_query):
        partitioner = ArbitraryOrderCategoricalPartitioner(
            "neighborhood", query=seattle_query
        )
        parts = partitioner.partition(rows)
        universe = seattle_query.values_on("neighborhood")
        assert {label.single_value for label, _ in parts} <= universe

    def test_equi_width_partitioner(self, rows, statistics, seattle_query):
        partitioner = EquiWidthNumericPartitioner(
            "price", statistics, PAPER_CONFIG, query=seattle_query, root_rows=rows
        )
        assert partitioner.width == 25_000.0
        parts = partitioner.partition(rows)
        assert len(parts) > 1
        assert all(len(r) > 0 for _, r in parts)

    def test_equi_width_degenerate_range(self, statistics):
        from repro.data.homes import list_property_schema
        from repro.relational.table import Table

        empty = Table(list_property_schema()).all_rows()
        partitioner = EquiWidthNumericPartitioner(
            "price", statistics, PAPER_CONFIG, root_rows=empty
        )
        assert partitioner.partition(empty) == []
