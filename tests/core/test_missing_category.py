"""Tests for missing-value ("unknown") categories.

The paper assumes non-null attributes; real feeds have gaps.  Without
``include_missing_category``, NULL-valued tuples silently drop out of any
level partitioned on the affected attribute; with it, they land in a
trailing "attribute: unknown" category and stay reachable.
"""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig
from repro.core.labels import MissingLabel
from repro.core.partition.categorical import CategoricalPartitioner
from repro.core.partition.numeric import NumericPartitioner
from repro.core.probability import ProbabilityEstimator
from repro.core.serialize import tree_from_json, tree_to_json
from repro.data.homes import ListPropertyGenerator
from repro.data.geography import SEATTLE_BELLEVUE
from repro.relational.expressions import InPredicate, IsNullPredicate
from repro.relational.query import SelectQuery
from repro.workload.preprocess import preprocess_workload


@pytest.fixture(scope="module")
def gappy_homes():
    """A dataset where 20% of listings lack year-built and 10% lack sqft."""
    return ListPropertyGenerator(
        rows=3_000, seed=9, null_rates={"yearbuilt": 0.2, "squarefootage": 0.1}
    ).generate()


@pytest.fixture(scope="module")
def gappy_stats(gappy_homes, workload):
    from repro.core.config import PAPER_CONFIG

    return preprocess_workload(
        workload, gappy_homes.schema, PAPER_CONFIG.separation_intervals
    )


MISSING_CONFIG = CategorizerConfig(include_missing_category=True)


class TestIsNullPredicate:
    def test_matches_only_null(self):
        pred = IsNullPredicate("yearbuilt")
        assert pred.matches({"yearbuilt": None})
        assert not pred.matches({"yearbuilt": 1990})
        assert pred.matches({})


class TestMissingLabel:
    def test_matches(self):
        label = MissingLabel("yearbuilt")
        assert label.matches({"yearbuilt": None})
        assert not label.matches({"yearbuilt": 1990})

    def test_overlap_semantics(self):
        from repro.relational.expressions import RangePredicate

        label = MissingLabel("yearbuilt")
        assert label.overlaps_condition(None)
        assert not label.overlaps_condition(RangePredicate("yearbuilt", 1990, 2000))

    def test_display(self):
        assert MissingLabel("yearbuilt").display() == "yearbuilt: unknown"

    def test_exploration_probability_zero(self, gappy_stats):
        estimator = ProbabilityEstimator(gappy_stats)
        assert estimator.exploration_probability_of_label(
            MissingLabel("yearbuilt")
        ) == 0.0


class TestPartitioners:
    def test_numeric_partition_appends_missing(self, gappy_homes, gappy_stats):
        rows = gappy_homes.all_rows()
        partitioner = NumericPartitioner(
            "yearbuilt", gappy_stats, MISSING_CONFIG, root_rows=rows
        )
        partitioning = partitioner.partition(rows)
        assert isinstance(partitioning[-1][0], MissingLabel)
        missing_count = sum(
            1 for v in gappy_homes.column("yearbuilt") if v is None
        )
        assert len(partitioning[-1][1]) == missing_count
        assert sum(len(r) for _, r in partitioning) == len(rows)

    def test_numeric_partition_drops_nulls_by_default(self, gappy_homes, gappy_stats):
        from repro.core.config import PAPER_CONFIG

        rows = gappy_homes.all_rows()
        partitioner = NumericPartitioner(
            "yearbuilt", gappy_stats, PAPER_CONFIG, root_rows=rows
        )
        partitioning = partitioner.partition(rows)
        assert all(not isinstance(label, MissingLabel) for label, _ in partitioning)
        assert sum(len(r) for _, r in partitioning) < len(rows)

    def test_categorical_partition_appends_missing(self, gappy_stats):
        from repro.data.homes import list_property_schema
        from repro.relational.table import Table

        table = Table(list_property_schema())
        table.extend(
            [
                {"propertytype": "Condo/Townhome"},
                {"propertytype": None},
                {"propertytype": "Land"},
                {"propertytype": None},
            ]
        )
        partitioner = CategoricalPartitioner(
            "propertytype", gappy_stats, include_missing=True
        )
        partitioning = partitioner.partition(table.all_rows())
        assert isinstance(partitioning[-1][0], MissingLabel)
        assert len(partitioning[-1][1]) == 2


class TestEndToEnd:
    def test_tree_keeps_every_tuple_reachable(self, gappy_homes, gappy_stats):
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        rows = query.execute(gappy_homes)
        tree = CostBasedCategorizer(gappy_stats, MISSING_CONFIG).categorize(
            rows, query
        )
        tree.validate()
        # Every tuple of every partitioned node must appear under a child.
        for node in tree.nodes():
            if node.children:
                covered = sum(child.tuple_count for child in node.children)
                assert covered == node.tuple_count, node.display()

    def test_default_config_loses_null_tuples(self, gappy_homes, gappy_stats):
        # Force a level on the gapped attribute so the loss is visible.
        from repro.core.config import PAPER_CONFIG
        from repro.core.enumerate import FixedOrderCategorizer

        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        rows = query.execute(gappy_homes)
        tree = FixedOrderCategorizer(
            gappy_stats, ("yearbuilt",), PAPER_CONFIG
        ).categorize(rows, query)
        assert tree.level_attributes() == ["yearbuilt"]
        covered = sum(c.tuple_count for c in tree.root.children)
        assert covered < tree.root.tuple_count, (
            "NULL year-built tuples should fall out of the default tree"
        )

    def test_missing_categories_serialize(self, gappy_homes, gappy_stats):
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        rows = query.execute(gappy_homes)
        tree = CostBasedCategorizer(gappy_stats, MISSING_CONFIG).categorize(
            rows, query
        )
        rebuilt = tree_from_json(tree_to_json(tree), rows)
        rebuilt.validate()
        assert rebuilt.node_count() == tree.node_count()

    def test_replay_reaches_missing_only_via_browse(self, gappy_homes, gappy_stats):
        from repro.explore.exploration import replay_all
        from repro.workload.model import WorkloadQuery

        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
        )
        rows = query.execute(gappy_homes)
        tree = CostBasedCategorizer(gappy_stats, MISSING_CONFIG).categorize(
            rows, query
        )
        # A user constraining yearbuilt never drills into the unknowns.
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE "
            "neighborhood IN ('Queen Anne, WA') AND yearbuilt >= 1990"
        )
        result = replay_all(tree, w)
        assert result.items_examined > 0
