"""Tests for the categorization explainer."""

import math

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.explain import (
    ExplainingCategorizer,
    explain_categorization,
)


@pytest.fixture(scope="module")
def explanation(request):
    homes = request.getfixturevalue("homes_table")
    statistics = request.getfixturevalue("statistics")
    query = request.getfixturevalue("seattle_query")
    rows = query.execute(homes)
    return explain_categorization(rows, query, statistics), rows, statistics, query


class TestTreeEquivalence:
    def test_same_tree_as_plain_categorizer(self, explanation):
        result, rows, statistics, query = explanation
        plain = CostBasedCategorizer(statistics, PAPER_CONFIG).categorize(rows, query)
        assert result.tree.level_attributes() == plain.level_attributes()
        assert result.tree.node_count() == plain.node_count()
        for a, b in zip(result.tree.nodes(), plain.nodes()):
            assert a.display() == b.display()
            assert a.rows.indices == b.rows.indices

    def test_tree_validates(self, explanation):
        result, *_ = explanation
        result.tree.validate()


class TestDecisions:
    def test_one_decision_per_level(self, explanation):
        result, *_ = explanation
        assert len(result.decisions) >= result.tree.depth()
        assert [d.level for d in result.decisions] == list(
            range(1, len(result.decisions) + 1)
        )

    def test_chosen_attribute_matches_tree(self, explanation):
        result, *_ = explanation
        chosen = [d.chosen for d in result.decisions if d.chosen]
        assert chosen[: result.tree.depth()] == result.tree.level_attributes()

    def test_chosen_has_minimal_cost(self, explanation):
        result, *_ = explanation
        for decision in result.decisions:
            if decision.chosen is None:
                continue
            viable = [c for c in decision.candidates if c.viable]
            winner = next(
                c for c in decision.candidates if c.attribute == decision.chosen
            )
            assert winner.cost == min(c.cost for c in viable)

    def test_attributes_never_repeat_across_levels(self, explanation):
        result, *_ = explanation
        chosen = [d.chosen for d in result.decisions if d.chosen]
        assert len(chosen) == len(set(chosen))

    def test_margin(self, explanation):
        result, *_ = explanation
        first = result.decisions[0]
        if sum(1 for c in first.candidates if c.viable) >= 2:
            assert first.margin() >= 1.0

    def test_unviable_candidates_marked(self, explanation):
        result, *_ = explanation
        for decision in result.decisions:
            for candidate in decision.candidates:
                assert candidate.viable == math.isfinite(candidate.cost)


class TestRendering:
    def test_render_mentions_every_level_and_winner(self, explanation):
        result, *_ = explanation
        text = result.render()
        for decision in result.decisions:
            assert f"Level {decision.level}:" in text
        assert "<- chosen" in text

    def test_render_sorted_by_cost(self, explanation):
        result, *_ = explanation
        first_section = result.render().split("\n\n")[0]
        # Skip title, header and rule lines; the rest are candidate rows.
        lines = [l for l in first_section.splitlines()[3:] if l.strip()]
        costs = []
        for line in lines:
            cell = line.split()[1]
            if cell != "-":
                costs.append(float(cell))
        assert costs == sorted(costs)


class TestReuse:
    def test_explainer_resets_between_calls(self, explanation):
        _, rows, statistics, query = explanation
        explainer = ExplainingCategorizer(statistics, PAPER_CONFIG)
        first = explainer.explain(rows, query)
        second = explainer.explain(rows, query)
        assert len(first.decisions) == len(second.decisions)
