"""Tests for CategorizerConfig validation and defaults."""

import pytest

from repro.core.config import (
    CategorizerConfig,
    LIST_PROPERTY_SEPARATION_INTERVALS,
    PAPER_CONFIG,
    PAPER_RETAINED_ATTRIBUTES,
)


class TestDefaults:
    def test_paper_values(self):
        assert PAPER_CONFIG.max_tuples_per_category == 20
        assert PAPER_CONFIG.elimination_threshold == 0.4
        assert PAPER_CONFIG.label_cost == 1.0

    def test_paper_separation_intervals(self):
        assert LIST_PROPERTY_SEPARATION_INTERVALS["price"] == 5_000
        assert LIST_PROPERTY_SEPARATION_INTERVALS["squarefootage"] == 100
        assert LIST_PROPERTY_SEPARATION_INTERVALS["yearbuilt"] == 5

    def test_paper_retained_attributes_are_six(self):
        assert len(PAPER_RETAINED_ATTRIBUTES) == 6

    def test_separation_interval_fallback(self):
        assert CategorizerConfig().separation_interval("mystery") == 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_tuples_per_category", 0),
            ("label_cost", 0.0),
            ("label_cost", -1.0),
            ("elimination_threshold", 1.5),
            ("elimination_threshold", -0.1),
            ("bucket_count", 1),
            ("frac", 1.5),
            ("min_bucket_tuples", 0),
            ("max_levels", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            CategorizerConfig(**{field: value})

    def test_boundary_values_accepted(self):
        CategorizerConfig(
            max_tuples_per_category=1,
            elimination_threshold=0.0,
            bucket_count=2,
            frac=0.0,
        )
        CategorizerConfig(elimination_threshold=1.0, frac=1.0)


class TestOverrides:
    def test_with_overrides_copies(self):
        tweaked = PAPER_CONFIG.with_overrides(max_tuples_per_category=50)
        assert tweaked.max_tuples_per_category == 50
        assert PAPER_CONFIG.max_tuples_per_category == 20

    def test_overrides_validated(self):
        with pytest.raises(ValueError):
            PAPER_CONFIG.with_overrides(label_cost=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.label_cost = 2.0  # type: ignore[misc]
