"""Tests for category labels."""

import math

import pytest

from repro.core.labels import CategoricalLabel, NumericLabel
from repro.relational.expressions import InPredicate, RangePredicate


class TestCategoricalLabel:
    def test_matches(self):
        label = CategoricalLabel("city", ("Seattle",))
        assert label.matches({"city": "Seattle"})
        assert not label.matches({"city": "Bellevue"})
        assert not label.matches({"city": None})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            CategoricalLabel("city", ())

    def test_to_predicate(self):
        pred = CategoricalLabel("city", ("a", "b")).to_predicate()
        assert isinstance(pred, InPredicate)
        assert pred.values == frozenset({"a", "b"})

    def test_overlaps_none_condition(self):
        assert CategoricalLabel("city", ("a",)).overlaps_condition(None)

    def test_overlaps_in_condition(self):
        label = CategoricalLabel("city", ("a",))
        assert label.overlaps_condition(InPredicate("city", ["a", "b"]))
        assert not label.overlaps_condition(InPredicate("city", ["b"]))

    def test_overlap_with_wrong_condition_type_rejected(self):
        label = CategoricalLabel("city", ("a",))
        with pytest.raises(TypeError):
            label.overlaps_condition(RangePredicate("city", 0, 1))

    def test_single_value(self):
        assert CategoricalLabel("city", ("a",)).single_value == "a"

    def test_single_value_rejects_multivalue(self):
        with pytest.raises(ValueError):
            CategoricalLabel("city", ("a", "b")).single_value

    def test_display_figure1_style(self):
        label = CategoricalLabel("Neighborhood", ("Redmond", "Bellevue"))
        assert label.display() == "Neighborhood: Bellevue, Redmond"


class TestNumericLabel:
    def test_half_open_matching(self):
        label = NumericLabel("price", 200, 300)
        assert label.matches({"price": 200})
        assert label.matches({"price": 299})
        assert not label.matches({"price": 300})

    def test_inclusive_top_bucket(self):
        label = NumericLabel("price", 200, 300, high_inclusive=True)
        assert label.matches({"price": 300})

    def test_null_never_matches(self):
        assert not NumericLabel("price", 0, 1).matches({"price": None})

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            NumericLabel("price", 300, 200)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            NumericLabel("price", math.nan, 1)

    def test_to_predicate_preserves_openness(self):
        pred = NumericLabel("price", 1, 2).to_predicate()
        assert isinstance(pred, RangePredicate)
        assert not pred.high_inclusive

    def test_overlaps_none_condition(self):
        assert NumericLabel("price", 0, 1).overlaps_condition(None)

    def test_overlaps_range_condition(self):
        label = NumericLabel("price", 200_000, 225_000)
        assert label.overlaps_condition(RangePredicate("price", 210_000, 400_000))
        # Query starting exactly at the open end does not overlap.
        assert not label.overlaps_condition(RangePredicate("price", 225_000, 250_000))

    def test_overlap_with_wrong_condition_type_rejected(self):
        with pytest.raises(TypeError):
            NumericLabel("price", 0, 1).overlaps_condition(InPredicate("price", [1]))

    def test_display_compact_bounds(self):
        assert NumericLabel("price", 200_000, 225_000).display() == "price: 200K-225K"

    def test_display_millions(self):
        assert NumericLabel("price", 1_500_000, 2_000_000).display() == "price: 1.5M-2M"

    def test_display_small_numbers(self):
        assert NumericLabel("bedroomcount", 3, 4).display() == "bedroomcount: 3-4"
