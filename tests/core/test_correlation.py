"""Tests for correlation-aware probability estimation (Section 5.2)."""

import pytest

from repro.core.correlation import CorrelationAwareEstimator, JointWorkloadIndex
from repro.core.labels import CategoricalLabel, NumericLabel
from repro.core.tree import CategoryNode
from repro.data.homes import list_property_schema
from repro.relational.table import Table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def correlated_workload():
    """Bellevue buyers want expensive homes; Bronx buyers want cheap ones."""
    statements = (
        [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Bellevue, WA') "
            "AND price BETWEEN 600000 AND 900000"
        ]
        * 10
        + [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Bronx, NY') "
            "AND price BETWEEN 100000 AND 250000"
        ]
        * 10
        + ["SELECT * FROM ListProperty WHERE bedroomcount BETWEEN 3 AND 4"] * 4
    )
    return Workload.from_sql_strings(statements)


@pytest.fixture
def estimator(correlated_workload):
    stats = preprocess_workload(
        correlated_workload, list_property_schema(), {"price": 5_000}
    )
    return CorrelationAwareEstimator(
        stats, correlated_workload, min_support=5
    )


def tree_with_neighborhood(name: str) -> CategoryNode:
    """ALL -> neighborhood:name, returning the child node."""
    table = Table(list_property_schema())
    table.insert({"neighborhood": name, "price": 700_000})
    root = CategoryNode(table.all_rows())
    (child,) = root.add_children(
        "neighborhood", [(CategoricalLabel("neighborhood", (name,)), table.all_rows())]
    )
    return child


class TestJointIndex:
    def test_all_indices(self, correlated_workload):
        index = JointWorkloadIndex(correlated_workload)
        assert len(index.all_indices()) == 24

    def test_compatible_includes_unconstrained(self, correlated_workload):
        index = JointWorkloadIndex(correlated_workload)
        label = CategoricalLabel("neighborhood", ("Bellevue, WA",))
        compatible = index.compatible(index.all_indices(), label)
        # 10 Bellevue queries + 4 with no neighborhood condition.
        assert len(compatible) == 14

    def test_constraining(self, correlated_workload):
        index = JointWorkloadIndex(correlated_workload)
        constraining = index.constraining(index.all_indices(), "price")
        assert len(constraining) == 20


class TestConditionalProbabilities:
    def test_conditioning_changes_price_probability(self, estimator):
        bellevue = tree_with_neighborhood("Bellevue, WA")
        bronx = tree_with_neighborhood("Bronx, NY")
        expensive = NumericLabel("price", 600_000, 900_000, high_inclusive=True)
        p_given_bellevue = estimator.exploration_probability_of_label(
            expensive, context=bellevue
        )
        p_given_bronx = estimator.exploration_probability_of_label(
            expensive, context=bronx
        )
        assert p_given_bellevue == pytest.approx(1.0)
        assert p_given_bronx == pytest.approx(0.0)

    def test_marginal_sits_between_conditionals(self, estimator):
        expensive = NumericLabel("price", 600_000, 900_000, high_inclusive=True)
        marginal = estimator.exploration_probability_of_label(expensive)
        assert 0.0 < marginal < 1.0

    def test_falls_back_below_min_support(self, correlated_workload):
        stats = preprocess_workload(
            correlated_workload, list_property_schema(), {"price": 5_000}
        )
        strict = CorrelationAwareEstimator(
            stats, correlated_workload, min_support=1_000
        )
        bellevue = tree_with_neighborhood("Bellevue, WA")
        label = NumericLabel("price", 600_000, 900_000, high_inclusive=True)
        conditional = strict.exploration_probability_of_label(label, context=bellevue)
        marginal = strict.exploration_probability_of_label(label)
        assert conditional == pytest.approx(marginal)

    def test_root_context_equals_marginal_population(self, estimator):
        # Conditioning on the root (no labels) uses the whole workload, so
        # the conditional equals the marginal by construction.
        table = Table(list_property_schema())
        table.insert({"neighborhood": "Bellevue, WA", "price": 700_000})
        root = CategoryNode(table.all_rows())
        label = NumericLabel("price", 600_000, 900_000, high_inclusive=True)
        assert estimator.exploration_probability_of_label(
            label, context=root
        ) == pytest.approx(estimator.exploration_probability_of_label(label))

    def test_invalid_min_support_rejected(self, correlated_workload):
        stats = preprocess_workload(
            correlated_workload, list_property_schema(), {"price": 5_000}
        )
        with pytest.raises(ValueError):
            CorrelationAwareEstimator(stats, correlated_workload, min_support=0)


class TestConditionalShowtuples:
    def test_pw_conditioned_on_path(self, estimator):
        # Among Bellevue-compatible queries (10 Bellevue + 4 bedroom-only),
        # 10 constrain price -> Pw = 1 - 10/14.
        bellevue = tree_with_neighborhood("Bellevue, WA")
        pw = estimator.showtuples_probability_for("price", context=bellevue)
        assert pw == pytest.approx(1.0 - 10 / 14)

    def test_leaf_still_one(self, estimator):
        leaf = tree_with_neighborhood("Bellevue, WA")
        assert estimator.showtuples_probability(leaf) == 1.0


class TestIntegrationWithCategorizer:
    def test_tree_builds_and_validates(self, homes_table, workload, statistics):
        from repro.core.algorithm import CostBasedCategorizer
        from repro.core.config import PAPER_CONFIG
        from repro.data.geography import SEATTLE_BELLEVUE
        from repro.relational.expressions import InPredicate
        from repro.relational.query import SelectQuery

        estimator = CorrelationAwareEstimator(statistics, workload, min_support=25)
        categorizer = CostBasedCategorizer(
            statistics, PAPER_CONFIG, estimator=estimator
        )
        query = SelectQuery(
            "ListProperty",
            InPredicate(
                "neighborhood", SEATTLE_BELLEVUE.neighborhood_names()[:6]
            ),
        )
        rows = query.execute(homes_table)
        tree = categorizer.categorize(rows, query)
        tree.validate()
        assert tree.depth() >= 1
