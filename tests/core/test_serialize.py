"""Tests for category-tree JSON serialization."""

import json
import math

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.core.serialize import (
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_json,
)


@pytest.fixture(scope="module")
def built(request):
    homes = request.getfixturevalue("homes_table")
    statistics = request.getfixturevalue("statistics")
    query = request.getfixturevalue("seattle_query")
    rows = query.execute(homes)
    tree = CostBasedCategorizer(statistics).categorize(rows, query)
    model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
    return tree, rows, model


class TestSerialization:
    def test_top_level_fields(self, built):
        tree, _, _ = built
        payload = tree_to_dict(tree)
        assert payload["technique"] == "cost-based"
        assert payload["result_size"] == tree.result_size
        assert payload["query"].startswith("SELECT")
        assert payload["root"]["label"] is None

    def test_json_is_valid(self, built):
        tree, _, _ = built
        parsed = json.loads(tree_to_json(tree))
        assert parsed["result_size"] == tree.result_size

    def test_cost_annotations_included(self, built):
        tree, _, model = built
        payload = tree_to_dict(tree, cost_model=model)
        costs = payload["root"]["costs"]
        assert costs["cost_all"] == pytest.approx(model.tree_cost_all(tree))
        assert 0 <= costs["showtuples_probability"] <= 1

    def test_no_costs_without_model(self, built):
        tree, _, _ = built
        assert "costs" not in tree_to_dict(tree)["root"]

    def test_infinite_bounds_encoded(self):
        from repro.core.serialize import _decode_bound, _encode_bound

        assert _encode_bound(math.inf) == "inf"
        assert _decode_bound("-inf") == -math.inf
        assert _decode_bound(5) == 5.0


class TestRoundTrip:
    def test_structure_preserved(self, built):
        tree, rows, _ = built
        rebuilt = tree_from_dict(tree_to_dict(tree), rows)
        rebuilt.validate()
        assert rebuilt.technique == tree.technique
        assert rebuilt.node_count() == tree.node_count()
        assert rebuilt.level_attributes() == tree.level_attributes()

    def test_tuple_sets_identical(self, built):
        tree, rows, _ = built
        rebuilt = tree_from_dict(tree_to_dict(tree), rows)
        for original, restored in zip(tree.nodes(), rebuilt.nodes()):
            assert original.rows.indices == restored.rows.indices
            assert original.display() == restored.display()

    def test_costs_identical_after_round_trip(self, built):
        tree, rows, model = built
        rebuilt = tree_from_json(tree_to_json(tree), rows)
        assert model.tree_cost_all(rebuilt) == pytest.approx(
            model.tree_cost_all(tree)
        )

    def test_wrong_result_set_rejected(self, built):
        tree, rows, _ = built
        truncated = rows.select(tree.root.children[0].label.to_predicate())
        with pytest.raises(ValueError, match="result set"):
            tree_from_dict(tree_to_dict(tree), truncated)

    def test_tampered_count_rejected(self, built):
        tree, rows, _ = built
        payload = tree_to_dict(tree)
        payload["root"]["children"][0]["tuple_count"] += 1
        with pytest.raises(ValueError, match="payload says"):
            tree_from_dict(payload, rows)
