"""Tests for numeric splitpoint partitioning (Section 5.1.3)."""

import pytest

from repro.core.config import CategorizerConfig
from repro.core.partition.numeric import (
    NumericPartitioner,
    bucketize,
    equi_width_partition,
)
from repro.data.homes import list_property_schema
from repro.relational.expressions import RangePredicate
from repro.relational.query import SelectQuery
from repro.relational.table import Table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


def make_stats(ranges):
    sql = [
        f"SELECT * FROM ListProperty WHERE price BETWEEN {lo} AND {hi}"
        for lo, hi in ranges
    ]
    workload = Workload.from_sql_strings(sql)
    return preprocess_workload(workload, list_property_schema(), {"price": 1_000})


def make_rows(prices):
    table = Table(list_property_schema())
    for price in prices:
        table.insert({"price": price})
    return table.all_rows()


@pytest.fixture
def stats():
    # Goodness: 5000 -> 4 (2 ends + 2 starts), 8000 -> 2, 2000 -> 1.
    return make_stats(
        [(2_000, 5_000), (1_000, 5_000), (5_000, 8_000), (5_000, 9_000), (8_000, 9_500)]
    )


class TestSplitpointSelection:
    def test_top_goodness_selected(self, stats):
        rows = make_rows([1_500, 3_000, 6_000, 7_000, 9_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(bucket_count=3), query=query
        )
        selected = partitioner.select_splitpoints(rows)
        assert selected == [5_000, 8_000]

    def test_unnecessary_splitpoint_skipped(self, stats):
        # No tuples above 5000: splitting at 5000 or 8000 would create an
        # empty right bucket, so both are unnecessary and the partitioner
        # falls through to 2000 (Example 5.1's skip behaviour).
        rows = make_rows([1_500, 2_500, 3_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(bucket_count=3), query=query
        )
        assert partitioner.select_splitpoints(rows) == [2_000]

    def test_skip_then_take_next_best(self, stats):
        # Tuples exist on both sides of 5000 and 2000 but not 8000: the
        # partitioner takes 5000 (goodness 4), skips 8000, selects 2000.
        rows = make_rows([1_500, 2_500, 3_000, 6_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(bucket_count=3), query=query
        )
        assert partitioner.select_splitpoints(rows) == [2_000, 5_000]

    def test_min_bucket_tuples_enforced(self, stats):
        rows = make_rows([1_500, 3_000, 6_000, 9_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        config = CategorizerConfig(bucket_count=5, min_bucket_tuples=2)
        partitioner = NumericPartitioner("price", stats, config, query=query)
        selected = partitioner.select_splitpoints(rows)
        for splitpoint in selected:
            below = sum(1 for p in [1_500, 3_000, 6_000, 9_000] if p < splitpoint)
            assert below >= 2 and 4 - below >= 2

    def test_empty_rows_select_nothing(self, stats):
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(), query=query
        )
        assert partitioner.select_splitpoints(make_rows([])) == []


class TestRangeResolution:
    def test_range_from_query(self, stats):
        query = SelectQuery("ListProperty", RangePredicate("price", 2_000, 9_000))
        partitioner = NumericPartitioner("price", stats, CategorizerConfig(), query=query)
        assert (partitioner.vmin, partitioner.vmax) == (2_000, 9_000)

    def test_range_from_data_when_query_silent(self, stats):
        rows = make_rows([1_200, 8_800])
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(), query=None, root_rows=rows
        )
        assert (partitioner.vmin, partitioner.vmax) == (1_200, 8_800)

    def test_one_sided_query_mixes_sources(self, stats):
        rows = make_rows([1_200, 8_800])
        query = SelectQuery(
            "ListProperty",
            RangePredicate("price", float("-inf"), 6_000),
        )
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(), query=query, root_rows=rows
        )
        assert (partitioner.vmin, partitioner.vmax) == (1_200, 6_000)

    def test_no_information_degenerates(self, stats):
        partitioner = NumericPartitioner("price", stats, CategorizerConfig())
        assert partitioner.vmin == partitioner.vmax


class TestPartition:
    def test_buckets_ascending_and_cover(self, stats):
        rows = make_rows([1_500, 3_000, 6_000, 7_000, 9_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(bucket_count=3), query=query
        )
        parts = partitioner.partition(rows)
        bounds = [(label.low, label.high) for label, _ in parts]
        assert bounds == sorted(bounds)
        assert sum(len(r) for _, r in parts) == 6

    def test_last_bucket_inclusive(self, stats):
        rows = make_rows([10_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(), query=query
        )
        parts = partitioner.partition(rows)
        assert sum(len(r) for _, r in parts) == 1
        assert parts[-1][0].high_inclusive

    def test_exploration_probability(self, stats):
        partitioner = NumericPartitioner(
            "price",
            stats,
            CategorizerConfig(),
            query=SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000)),
        )
        from repro.core.labels import NumericLabel

        # [6000, 7000) overlaps ranges (5000,8000) and (5000,9000) -> 2/5.
        label = NumericLabel("price", 6_000, 7_000)
        assert partitioner.exploration_probability(label) == pytest.approx(2 / 5)


class TestBucketize:
    def test_tuples_outside_range_dropped(self):
        rows = make_rows([500, 1_500, 2_500, 99_000])
        parts = bucketize("price", rows, 1_000, 3_000, [2_000])
        assert sum(len(r) for _, r in parts) == 2

    def test_empty_buckets_removed(self):
        rows = make_rows([1_500])
        parts = bucketize("price", rows, 1_000, 3_000, [2_000])
        assert len(parts) == 1

    def test_no_splitpoints_single_bucket(self):
        rows = make_rows([1_500, 2_500])
        parts = bucketize("price", rows, 1_000, 3_000, [])
        assert len(parts) == 1
        assert len(parts[0][1]) == 2

    def test_boundary_value_goes_right(self):
        rows = make_rows([2_000])
        parts = bucketize("price", rows, 1_000, 3_000, [2_000])
        label, bucket = parts[0]
        assert label.low == 2_000 and len(bucket) == 1


class TestEquiWidth:
    def test_splits_at_width_multiples(self):
        rows = make_rows([1_200, 2_700, 4_100, 4_900])
        parts = equi_width_partition("price", rows, 1_000, 5_000, 2_000)
        bounds = [(label.low, label.high) for label, _ in parts]
        assert bounds == [(1_000, 2_000), (2_000, 4_000), (4_000, 5_000)]

    def test_empty_buckets_removed(self):
        rows = make_rows([1_200, 9_900])
        parts = equi_width_partition("price", rows, 1_000, 10_000, 1_000)
        assert len(parts) == 2

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            equi_width_partition("price", make_rows([1]), 0, 10, 0)


class TestAutoBucketCount:
    def test_auto_mode_uses_goodness_distribution(self):
        # One dominant splitpoint and many weak ones: auto-m should pick few.
        ranges = [(2_000, 5_000)] * 20 + [(1_000, 3_000), (6_000, 9_000)]
        stats = make_stats(ranges)
        rows = make_rows(list(range(1_000, 10_000, 500)))
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        config = CategorizerConfig(auto_bucket_count=True, max_auto_buckets=10)
        partitioner = NumericPartitioner("price", stats, config, query=query)
        selected = partitioner.select_splitpoints(rows)
        assert 1 <= len(selected) <= 3
        assert 5_000 in selected


class TestPartitionCaching:
    """use_cache must change only where results come from, never what they are."""

    def test_cached_equals_uncached(self, stats):
        rows = make_rows([1_500, 3_000, 6_000, 7_000, 9_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        config = CategorizerConfig(bucket_count=3)
        cached = NumericPartitioner(
            "price", stats, config, query=query, use_cache=True
        )
        uncached = NumericPartitioner(
            "price", stats, config, query=query, use_cache=False
        )
        as_comparable = lambda parts: [(label, r.indices) for label, r in parts]
        assert as_comparable(cached.partition(rows)) == as_comparable(
            uncached.partition(rows)
        )

    def test_repeat_partition_served_from_view_cache(self, stats):
        from repro import perf

        rows = make_rows([1_500, 3_000, 6_000, 7_000, 9_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        partitioner = NumericPartitioner(
            "price", stats, CategorizerConfig(bucket_count=3), query=query
        )
        first = partitioner.partition(rows)
        perf.reset()
        perf.enable()
        try:
            second = partitioner.partition(rows)
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        assert counters.get("rowset.derive.hit", 0) >= 1
        # The cached partitioning shares the same RowSet objects...
        assert [r for _, r in first] == [r for _, r in second]
        # ...but the list itself is a fresh copy the caller may extend.
        assert first is not second

    def test_splitpoint_change_misses_stale_entry(self):
        # New workload evidence changes the selected splitpoints, which are
        # part of the cache key: the view must NOT serve the old bucketing.
        from repro.workload.model import WorkloadQuery

        stats = make_stats([(2_000, 5_000), (1_000, 5_000)])
        rows = make_rows([1_500, 3_000, 6_000, 7_000, 9_000, 4_000])
        query = SelectQuery("ListProperty", RangePredicate("price", 1_000, 10_000))
        config = CategorizerConfig(bucket_count=2, min_bucket_tuples=1)
        before = NumericPartitioner("price", stats, config, query=query).partition(
            rows
        )
        for _ in range(5):
            stats.record_query(
                WorkloadQuery.from_sql(
                    "SELECT * FROM ListProperty WHERE price BETWEEN 7000 AND 9000"
                )
            )
        after = NumericPartitioner("price", stats, config, query=query).partition(
            rows
        )
        assert [label for label, _ in before] != [label for label, _ in after]
