"""Tests for the cost models: Equations (1) and (2) on hand-computed trees."""

import pytest

from repro.core.config import CategorizerConfig
from repro.core.cost import CostModel
from repro.core.labels import CategoricalLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


class StubEstimator:
    """Fixed probabilities keyed by node display name."""

    def __init__(self, p, pw):
        self._p = p
        self._pw = pw

    def showtuples_probability(self, node):
        if node.is_leaf:
            return 1.0
        return self._pw[node.display()]

    def showtuples_probability_for(self, attribute, context=None):
        return self._pw[attribute]

    def exploration_probability(self, node):
        if node.label is None:
            return 1.0
        return self._p[node.display()]


def build_two_level_tree(sizes=(10, 30)):
    """ALL(40) -> x: a (10), x: b (30)."""
    schema = TableSchema("T", (Attribute("x", DataType.TEXT),))
    table = Table(schema)
    for value, count in zip("ab", sizes):
        for _ in range(count):
            table.insert({"x": value})
    root = CategoryNode(table.all_rows())
    parts = table.all_rows().partition_by(lambda r: r["x"])
    root.add_children(
        "x",
        [
            (CategoricalLabel("x", ("a",)), parts["a"]),
            (CategoricalLabel("x", ("b",)), parts["b"]),
        ],
    )
    return CategoryTree(root, technique="test")


@pytest.fixture
def tree():
    return build_two_level_tree()


@pytest.fixture
def model(tree):
    estimator = StubEstimator(
        p={"x: a": 0.5, "x: b": 0.25},
        pw={"ALL": 0.3, "x": 0.3},
    )
    return CostModel(estimator, CategorizerConfig(label_cost=1.0, frac=0.5))


class TestCostAll:
    def test_leaf_cost_is_tuple_count(self, tree, model):
        leaf = tree.root.children[0]
        assert model.cost_all(leaf) == 10.0

    def test_equation_one_by_hand(self, tree, model):
        # CostAll(root) = 0.3*40 + 0.7*(1*2 + 0.5*10 + 0.25*30)
        #               = 12 + 0.7*14.5 = 22.15
        assert model.cost_all(tree.root) == pytest.approx(22.15)

    def test_tree_cost_all_is_root(self, tree, model):
        assert model.tree_cost_all(tree) == model.cost_all(tree.root)

    def test_label_cost_scales_k_term(self, tree):
        estimator = StubEstimator(
            p={"x: a": 0.5, "x: b": 0.25}, pw={"ALL": 0.3, "x": 0.3}
        )
        model_k2 = CostModel(estimator, CategorizerConfig(label_cost=2.0))
        # K term grows from 2 to 4: cost = 12 + 0.7*16.5 = 23.55
        assert model_k2.cost_all(tree.root) == pytest.approx(23.55)

    def test_pure_showtuples_degenerates(self, tree):
        estimator = StubEstimator(p={"x: a": 1, "x: b": 1}, pw={"ALL": 1.0})
        model = CostModel(estimator, CategorizerConfig())
        assert model.cost_all(tree.root) == 40.0


class TestCostOne:
    def test_leaf_cost_uses_frac(self, tree, model):
        leaf = tree.root.children[1]
        assert model.cost_one(leaf) == pytest.approx(0.5 * 30)

    def test_equation_two_by_hand(self, tree, model):
        # SHOWCAT term:
        #   i=1: P(a)*(K*1 + 0.5*10)      = 0.5 * 6        = 3.0
        #   i=2: (1-0.5)*P(b)*(K*2 + 15)  = 0.5*0.25*17    = 2.125
        # CostOne = 0.3*0.5*40 + 0.7*(3.0 + 2.125) = 6 + 3.5875 = 9.5875
        assert model.cost_one(tree.root) == pytest.approx(9.5875)

    def test_tree_cost_one_is_root(self, tree, model):
        assert model.tree_cost_one(tree) == model.cost_one(tree.root)

    def test_order_matters_for_cost_one(self):
        # Same categories, swapped presentation order => different CostOne.
        tree_fwd = build_two_level_tree()
        tree_rev = build_two_level_tree()
        tree_rev.root.children.reverse()
        estimator = StubEstimator(
            p={"x: a": 0.9, "x: b": 0.1}, pw={"ALL": 0.0, "x": 0.0}
        )
        model = CostModel(estimator, CategorizerConfig())
        assert model.cost_one(tree_fwd.root) < model.cost_one(tree_rev.root)

    def test_order_does_not_matter_for_cost_all(self):
        tree_fwd = build_two_level_tree()
        tree_rev = build_two_level_tree()
        tree_rev.root.children.reverse()
        estimator = StubEstimator(
            p={"x: a": 0.9, "x: b": 0.1}, pw={"ALL": 0.0, "x": 0.0}
        )
        model = CostModel(estimator, CategorizerConfig())
        assert model.cost_all(tree_fwd.root) == pytest.approx(
            model.cost_all(tree_rev.root)
        )


class TestOneLevelCost:
    def test_matches_full_equation(self, tree, model):
        direct = model.one_level_cost_all(40, "x", [(0.5, 10), (0.25, 30)])
        assert direct == pytest.approx(model.cost_all(tree.root))


class TestAnnotate:
    def test_annotations_match_direct_computation(self, tree, model):
        annotations = model.annotate(tree)
        assert annotations[id(tree.root)].cost_all == pytest.approx(
            model.cost_all(tree.root)
        )
        assert annotations[id(tree.root)].cost_one == pytest.approx(
            model.cost_one(tree.root)
        )
        leaf = tree.root.children[0]
        assert annotations[id(leaf)].showtuples_probability == 1.0
        assert annotations[id(leaf)].cost_all == 10.0

    def test_every_node_annotated(self, tree, model):
        annotations = model.annotate(tree)
        assert len(annotations) == 3
