"""Tests for the exhaustive categorization search and fixed-order builder."""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig
from repro.core.cost import CostModel
from repro.core.enumerate import (
    FixedOrderCategorizer,
    _count_orders,
    enumerate_optimal_tree,
)
from repro.core.probability import ProbabilityEstimator
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


SCHEMA = TableSchema(
    "T",
    (
        Attribute("color", DataType.TEXT, AttributeKind.CATEGORICAL),
        Attribute("size", DataType.INT, AttributeKind.NUMERIC),
        Attribute("shape", DataType.TEXT, AttributeKind.CATEGORICAL),
    ),
)

CONFIG = CategorizerConfig(
    max_tuples_per_category=4,
    elimination_threshold=0.0,
    bucket_count=3,
    separation_intervals={"size": 10.0},
)


@pytest.fixture(scope="module")
def setup():
    import random

    rng = random.Random(3)
    table = Table(SCHEMA)
    for _ in range(80):
        table.insert(
            {
                "color": rng.choice(["red", "green", "blue"]),
                "size": rng.randrange(0, 100),
                "shape": rng.choice(["round", "square"]),
            }
        )
    statements = []
    for _ in range(40):
        parts = []
        if rng.random() < 0.8:
            parts.append(f"color IN ('{rng.choice(['red', 'green', 'blue'])}')")
        if rng.random() < 0.6:
            low = rng.randrange(0, 60, 10)
            parts.append(f"size BETWEEN {low} AND {low + 30}")
        if rng.random() < 0.3:
            parts.append(f"shape IN ('{rng.choice(['round', 'square'])}')")
        if not parts:
            parts.append("size BETWEEN 0 AND 50")
        statements.append("SELECT * FROM T WHERE " + " AND ".join(parts))
    workload = Workload.from_sql_strings(statements)
    stats = preprocess_workload(workload, SCHEMA, {"size": 10.0})
    return table, stats


class TestFixedOrder:
    def test_respects_prescribed_order(self, setup):
        table, stats = setup
        tree = FixedOrderCategorizer(stats, ("size", "color"), CONFIG).categorize(
            table.all_rows(), SelectQuery("T")
        )
        tree.validate()
        used = tree.level_attributes()
        assert used == ["size", "color"][: len(used)]

    def test_stops_when_head_cannot_refine(self, setup):
        table, stats = setup
        # A constant attribute cannot refine; the fixed order must stop
        # rather than skip ahead.
        single = table.select(
            __import__("repro.relational.expressions", fromlist=["InPredicate"])
            .InPredicate("shape", ["round"])
        )
        tree = FixedOrderCategorizer(stats, ("shape", "color"), CONFIG).categorize(
            single, SelectQuery("T")
        )
        assert tree.root.is_leaf or tree.level_attributes()[0] == "shape"


class TestEnumeration:
    def test_count_orders(self):
        # 3 attributes: 3 + 6 + 6 = 15 orders.
        assert _count_orders(3) == 15
        assert _count_orders(0) == 0

    def test_enumerates_all_orders(self, setup):
        table, stats = setup
        result = enumerate_optimal_tree(
            table.all_rows(), SelectQuery("T"), stats, CONFIG
        )
        assert result.trees_evaluated == 15
        assert set(result.costs_by_order) == {
            order for order in result.costs_by_order
        }

    def test_best_is_minimum(self, setup):
        table, stats = setup
        result = enumerate_optimal_tree(
            table.all_rows(), SelectQuery("T"), stats, CONFIG
        )
        assert result.best_cost == pytest.approx(min(result.costs_by_order.values()))
        assert result.costs_by_order[result.best_order] == pytest.approx(
            result.best_cost
        )

    def test_best_tree_matches_reported_cost(self, setup):
        table, stats = setup
        result = enumerate_optimal_tree(
            table.all_rows(), SelectQuery("T"), stats, CONFIG
        )
        model = CostModel(ProbabilityEstimator(stats), CONFIG)
        assert model.tree_cost_all(result.best_tree) == pytest.approx(
            result.best_cost
        )

    def test_greedy_is_near_optimal(self, setup):
        """The Figure 6 greedy algorithm should land close to the optimum."""
        table, stats = setup
        result = enumerate_optimal_tree(
            table.all_rows(), SelectQuery("T"), stats, CONFIG
        )
        greedy = CostBasedCategorizer(stats, CONFIG).categorize(
            table.all_rows(), SelectQuery("T")
        )
        model = CostModel(ProbabilityEstimator(stats), CONFIG)
        greedy_cost = model.tree_cost_all(greedy)
        assert greedy_cost <= result.best_cost * 1.25

    def test_max_orders_guardrail(self, setup):
        table, stats = setup
        with pytest.raises(ValueError, match="max_orders"):
            enumerate_optimal_tree(
                table.all_rows(), SelectQuery("T"), stats, CONFIG, max_orders=5
            )

    def test_no_candidates_degenerates_to_root(self, setup):
        table, stats = setup
        strict = CONFIG.with_overrides(elimination_threshold=1.0)
        result = enumerate_optimal_tree(
            table.all_rows(), SelectQuery("T"), stats, strict
        )
        assert result.trees_evaluated == 0
        assert result.best_tree.root.is_leaf
