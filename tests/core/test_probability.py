"""Tests for the workload-driven probability estimator (Section 4.2)."""

import pytest

from repro.core.labels import CategoricalLabel, NumericLabel
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryNode
from repro.data.homes import list_property_schema
from repro.relational.table import Table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def estimator():
    workload = Workload.from_sql_strings(
        [
            # 4 queries; 3 constrain neighborhood, 2 constrain price.
            "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('A, WA', 'B, WA') "
            "AND price BETWEEN 200000 AND 300000",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA')",
            "SELECT * FROM ListProperty WHERE price BETWEEN 400000 AND 500000",
        ]
    )
    stats = preprocess_workload(workload, list_property_schema(), {"price": 5_000})
    return ProbabilityEstimator(stats)


def make_node(children_attribute=None):
    table = Table(list_property_schema())
    table.insert({"neighborhood": "A, WA", "price": 250_000})
    node = CategoryNode(table.all_rows())
    if children_attribute is not None:
        node.add_children(
            children_attribute,
            [(CategoricalLabel(children_attribute, ("A, WA",)), table.all_rows())],
        )
    return node


class TestShowtuplesProbability:
    def test_leaf_is_one(self, estimator):
        assert estimator.showtuples_probability(make_node()) == 1.0

    def test_internal_node_uses_subcategorizing_attribute(self, estimator):
        node = make_node("neighborhood")
        # NAttr(neighborhood)/N = 3/4 -> Pw = 1/4.
        assert estimator.showtuples_probability(node) == pytest.approx(0.25)

    def test_by_attribute_name(self, estimator):
        assert estimator.showtuples_probability_for("price") == pytest.approx(0.5)

    def test_unused_attribute_forces_showtuples(self, estimator):
        assert estimator.showtuples_probability_for("yearbuilt") == 1.0


class TestExplorationProbability:
    def test_root_always_explored(self, estimator):
        assert estimator.exploration_probability(make_node()) == 1.0

    def test_categorical_label(self, estimator):
        # occ(A)=2 of NAttr(neighborhood)=3.
        label = CategoricalLabel("neighborhood", ("A, WA",))
        assert estimator.exploration_probability_of_label(label) == pytest.approx(2 / 3)

    def test_numeric_label(self, estimator):
        # Bucket [250K, 450K) overlaps both price ranges -> 2/2.
        label = NumericLabel("price", 250_000, 450_000)
        assert estimator.exploration_probability_of_label(label) == pytest.approx(1.0)

    def test_numeric_label_partial_overlap(self, estimator):
        # Bucket [350K, 450K) overlaps only the 400-500K query -> 1/2.
        label = NumericLabel("price", 350_000, 450_000)
        assert estimator.exploration_probability_of_label(label) == pytest.approx(0.5)

    def test_unconstrained_attribute_probability_zero(self, estimator):
        label = NumericLabel("yearbuilt", 1950, 2000)
        assert estimator.exploration_probability_of_label(label) == 0.0

    def test_probability_bounded(self, estimator):
        for label in (
            CategoricalLabel("neighborhood", ("A, WA", "B, WA")),
            NumericLabel("price", 0, 10_000_000),
        ):
            p = estimator.exploration_probability_of_label(label)
            assert 0.0 <= p <= 1.0

    def test_n_overlap_unknown_label_type_rejected(self, estimator):
        class Mystery:
            attribute = "x"

        with pytest.raises(TypeError):
            estimator.n_overlap(Mystery())
