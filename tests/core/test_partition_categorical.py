"""Tests for single-value categorical partitioning (Section 5.1.2)."""

import pytest

from repro.core.partition.categorical import CategoricalPartitioner
from repro.data.homes import list_property_schema
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.relational.table import Table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def stats():
    workload = Workload.from_sql_strings(
        [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA', 'A, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('C, WA')",
        ]
    )
    return preprocess_workload(workload, list_property_schema())


@pytest.fixture
def rows():
    table = Table(list_property_schema())
    for hood, count in (("A, WA", 3), ("B, WA", 5), ("C, WA", 2), ("D, WA", 1)):
        for i in range(count):
            table.insert({"neighborhood": hood, "price": 100_000 + i})
    return table.all_rows()


class TestOrdering:
    def test_values_ordered_by_occ_desc(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        ordered = partitioner.ordered_values(rows)
        # occ: B=3, A=1, C=1, D=0; ties (A, C) break by repr.
        assert ordered == ["B, WA", "A, WA", "C, WA", "D, WA"]

    def test_universe_from_query_in_clause(self, stats, rows):
        query = SelectQuery(
            "ListProperty", InPredicate("neighborhood", ["A, WA", "B, WA"])
        )
        partitioner = CategoricalPartitioner("neighborhood", stats, query=query)
        assert partitioner.ordered_values(rows) == ["B, WA", "A, WA"]

    def test_explicit_universe_wins(self, stats, rows):
        partitioner = CategoricalPartitioner(
            "neighborhood", stats, universe=["C, WA", "B, WA"]
        )
        assert partitioner.ordered_values(rows) == ["B, WA", "C, WA"]


class TestPartition:
    def test_partition_counts(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        sizes = {label.single_value: len(r) for label, r in parts}
        assert sizes == {"A, WA": 3, "B, WA": 5, "C, WA": 2, "D, WA": 1}

    def test_partition_order_follows_occ(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        assert [label.single_value for label, _ in parts] == [
            "B, WA", "A, WA", "C, WA", "D, WA",
        ]

    def test_empty_categories_removed(self, stats, rows):
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", ["A, WA", "Z, WA"]),  # Z has no tuples
        )
        partitioner = CategoricalPartitioner("neighborhood", stats, query=query)
        parts = partitioner.partition(rows)
        assert [label.single_value for label, _ in parts] == ["A, WA"]

    def test_tuples_outside_universe_uncategorized(self, stats, rows):
        partitioner = CategoricalPartitioner(
            "neighborhood", stats, universe=["A, WA"]
        )
        parts = partitioner.partition(rows)
        assert sum(len(r) for _, r in parts) == 3

    def test_partitions_are_disjoint(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        indices = [i for _, r in parts for i in r.indices]
        assert len(indices) == len(set(indices))

    def test_labels_are_single_value(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        for label, _ in partitioner.partition(rows):
            assert len(label.values) == 1


class TestExplorationProbability:
    def test_occ_ratio(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        assert partitioner.exploration_probability("B, WA") == pytest.approx(3 / 4)
        assert partitioner.exploration_probability("D, WA") == 0.0

    def test_zero_when_attribute_unused(self, stats, rows):
        partitioner = CategoricalPartitioner("propertytype", stats)
        assert partitioner.exploration_probability("Condo/Townhome") == 0.0
