"""Tests for single-value categorical partitioning (Section 5.1.2)."""

import pytest

from repro.core.partition.categorical import CategoricalPartitioner
from repro.data.homes import list_property_schema
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.relational.table import Table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def stats():
    workload = Workload.from_sql_strings(
        [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('B, WA', 'A, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('C, WA')",
        ]
    )
    return preprocess_workload(workload, list_property_schema())


@pytest.fixture
def rows():
    table = Table(list_property_schema())
    for hood, count in (("A, WA", 3), ("B, WA", 5), ("C, WA", 2), ("D, WA", 1)):
        for i in range(count):
            table.insert({"neighborhood": hood, "price": 100_000 + i})
    return table.all_rows()


class TestOrdering:
    def test_values_ordered_by_occ_desc(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        ordered = partitioner.ordered_values(rows)
        # occ: B=3, A=1, C=1, D=0; ties (A, C) break by repr.
        assert ordered == ["B, WA", "A, WA", "C, WA", "D, WA"]

    def test_universe_from_query_in_clause(self, stats, rows):
        query = SelectQuery(
            "ListProperty", InPredicate("neighborhood", ["A, WA", "B, WA"])
        )
        partitioner = CategoricalPartitioner("neighborhood", stats, query=query)
        assert partitioner.ordered_values(rows) == ["B, WA", "A, WA"]

    def test_explicit_universe_wins(self, stats, rows):
        partitioner = CategoricalPartitioner(
            "neighborhood", stats, universe=["C, WA", "B, WA"]
        )
        assert partitioner.ordered_values(rows) == ["B, WA", "C, WA"]


class TestPartition:
    def test_partition_counts(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        sizes = {label.single_value: len(r) for label, r in parts}
        assert sizes == {"A, WA": 3, "B, WA": 5, "C, WA": 2, "D, WA": 1}

    def test_partition_order_follows_occ(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        assert [label.single_value for label, _ in parts] == [
            "B, WA", "A, WA", "C, WA", "D, WA",
        ]

    def test_empty_categories_removed(self, stats, rows):
        query = SelectQuery(
            "ListProperty",
            InPredicate("neighborhood", ["A, WA", "Z, WA"]),  # Z has no tuples
        )
        partitioner = CategoricalPartitioner("neighborhood", stats, query=query)
        parts = partitioner.partition(rows)
        assert [label.single_value for label, _ in parts] == ["A, WA"]

    def test_tuples_outside_universe_uncategorized(self, stats, rows):
        partitioner = CategoricalPartitioner(
            "neighborhood", stats, universe=["A, WA"]
        )
        parts = partitioner.partition(rows)
        assert sum(len(r) for _, r in parts) == 3

    def test_partitions_are_disjoint(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        parts = partitioner.partition(rows)
        indices = [i for _, r in parts for i in r.indices]
        assert len(indices) == len(set(indices))

    def test_labels_are_single_value(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        for label, _ in partitioner.partition(rows):
            assert len(label.values) == 1


class TestExplorationProbability:
    def test_occ_ratio(self, stats, rows):
        partitioner = CategoricalPartitioner("neighborhood", stats)
        assert partitioner.exploration_probability("B, WA") == pytest.approx(3 / 4)
        assert partitioner.exploration_probability("D, WA") == 0.0

    def test_zero_when_attribute_unused(self, stats, rows):
        partitioner = CategoricalPartitioner("propertytype", stats)
        assert partitioner.exploration_probability("Condo/Townhome") == 0.0


def _as_comparable(partitioning):
    return [(label, part.indices) for label, part in partitioning]


class TestIndexPathEquivalence:
    """The groupby-index fast path must match the scan path exactly."""

    def test_full_table_partitioning_identical(self, stats, rows):
        fast = CategoricalPartitioner("neighborhood", stats, use_index=True)
        slow = CategoricalPartitioner("neighborhood", stats, use_index=False)
        assert _as_comparable(fast.partition(rows)) == _as_comparable(
            slow.partition(rows)
        )

    def test_subset_partitioning_identical(self, stats, rows):
        subset = rows.select(InPredicate("neighborhood", ["A, WA", "B, WA"]))
        fast = CategoricalPartitioner("neighborhood", stats, use_index=True)
        slow = CategoricalPartitioner("neighborhood", stats, use_index=False)
        assert _as_comparable(fast.partition(subset)) == _as_comparable(
            slow.partition(subset)
        )

    def test_query_universe_identical(self, stats, rows):
        query = SelectQuery(
            "ListProperty", InPredicate("neighborhood", ["A, WA", "C, WA"])
        )
        fast = CategoricalPartitioner(
            "neighborhood", stats, query=query, use_index=True
        )
        slow = CategoricalPartitioner(
            "neighborhood", stats, query=query, use_index=False
        )
        assert _as_comparable(fast.partition(rows)) == _as_comparable(
            slow.partition(rows)
        )

    def test_missing_category_identical(self, stats):
        table = Table(list_property_schema())
        for hood in ("A, WA", "B, WA", None, "A, WA", None):
            table.insert({"neighborhood": hood, "price": 1})
        rows = table.all_rows()
        fast = CategoricalPartitioner(
            "neighborhood", stats, include_missing=True, use_index=True
        )
        slow = CategoricalPartitioner(
            "neighborhood", stats, include_missing=True, use_index=False
        )
        assert _as_comparable(fast.partition(rows)) == _as_comparable(
            slow.partition(rows)
        )

    def test_non_ascending_view_falls_back_to_scan(self, stats, rows):
        from repro.relational.table import RowSet

        shuffled = RowSet(rows.table, tuple(reversed(rows.indices)))
        fast = CategoricalPartitioner("neighborhood", stats, use_index=True)
        assert not fast._index_path_profitable(
            shuffled, fast.ordered_values(shuffled)
        )
        # The partitioning still works (via the scan path) and preserves
        # the view's own row order inside each bucket.
        slow = CategoricalPartitioner("neighborhood", stats, use_index=False)
        assert _as_comparable(fast.partition(shuffled)) == _as_comparable(
            slow.partition(shuffled)
        )

    def test_index_path_taken_on_full_table(self, stats, rows):
        from repro import perf

        perf.reset()
        perf.enable()
        try:
            CategoricalPartitioner(
                "neighborhood", stats, use_index=True
            ).partition(rows)
        finally:
            perf.disable()
        counters = dict(perf.get().counters)
        perf.reset()
        assert counters.get("partition.categorical.index_path", 0) == 1
        assert counters.get("partition.categorical.scan_path", 0) == 0
