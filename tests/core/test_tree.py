"""Tests for the category tree structure and its invariants."""

import pytest

from repro.core.labels import CategoricalLabel, NumericLabel
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


@pytest.fixture
def table():
    schema = TableSchema(
        "T",
        (Attribute("city", DataType.TEXT), Attribute("price", DataType.INT)),
    )
    t = Table(schema)
    t.extend(
        [
            {"city": "a", "price": 100},
            {"city": "a", "price": 300},
            {"city": "b", "price": 200},
            {"city": "b", "price": 400},
        ]
    )
    return t


@pytest.fixture
def tree(table):
    """ALL -> city {a, b} -> price buckets under 'a'."""
    root = CategoryNode(table.all_rows())
    parts = table.all_rows().partition_by(lambda r: r["city"])
    a_node, b_node = root.add_children(
        "city",
        [
            (CategoricalLabel("city", ("a",)), parts["a"]),
            (CategoricalLabel("city", ("b",)), parts["b"]),
        ],
    )
    low = a_node.rows.select(NumericLabel("price", 0, 200).to_predicate())
    high = a_node.rows.select(NumericLabel("price", 200, 401).to_predicate())
    a_node.add_children(
        "price",
        [
            (NumericLabel("price", 0, 200), low),
            (NumericLabel("price", 200, 401), high),
        ],
    )
    return CategoryTree(root, technique="test")


class TestNode:
    def test_root_properties(self, tree):
        assert tree.root.is_root
        assert tree.root.label is None
        assert tree.root.level == 0
        assert tree.root.display() == "ALL"
        assert tree.root.categorizing_attribute is None

    def test_child_properties(self, tree):
        a_node = tree.root.children[0]
        assert a_node.level == 1
        assert a_node.categorizing_attribute == "city"
        assert a_node.child_attribute == "price"
        assert not a_node.is_leaf

    def test_leaf(self, tree):
        b_node = tree.root.children[1]
        assert b_node.is_leaf
        assert b_node.child_attribute is None

    def test_tuple_counts(self, tree):
        assert tree.root.tuple_count == 4
        assert tree.root.children[0].tuple_count == 2

    def test_path_labels(self, tree):
        deep = tree.root.children[0].children[0]
        labels = deep.path_labels()
        assert [l.attribute for l in labels] == ["city", "price"]

    def test_add_children_twice_rejected(self, tree, table):
        with pytest.raises(ValueError, match="already has children"):
            tree.root.add_children("price", [])

    def test_add_children_wrong_attribute_rejected(self, table):
        root = CategoryNode(table.all_rows())
        with pytest.raises(ValueError, match="expected"):
            root.add_children(
                "city",
                [(NumericLabel("price", 0, 1), table.all_rows())],
            )

    def test_add_empty_category_rejected(self, table):
        root = CategoryNode(table.all_rows())
        empty = table.all_rows().select(CategoricalLabel("city", ("zzz",)).to_predicate())
        with pytest.raises(ValueError, match="empty category"):
            root.add_children("city", [(CategoricalLabel("city", ("zzz",)), empty)])

    def test_walk_preorder(self, tree):
        names = [n.display() for n in tree.root.walk()]
        assert names[0] == "ALL"
        assert names[1] == "city: a"


class TestTree:
    def test_root_must_be_root(self, tree):
        child = tree.root.children[0]
        with pytest.raises(ValueError):
            CategoryTree(child)

    def test_counts(self, tree):
        assert tree.result_size == 4
        assert tree.node_count() == 5
        assert tree.category_count() == 4
        assert tree.depth() == 2

    def test_leaves(self, tree):
        assert sum(1 for _ in tree.leaves()) == 3

    def test_level_attributes(self, tree):
        assert tree.level_attributes() == ["city", "price"]

    def test_max_leaf_size(self, tree):
        assert tree.max_leaf_size() == 2

    def test_find(self, tree):
        found = tree.find(lambda n: n.display() == "city: b")
        assert found is not None and found.tuple_count == 2

    def test_validate_passes(self, tree):
        tree.validate()


class TestValidation:
    def test_repeated_attribute_rejected(self, table):
        root = CategoryNode(table.all_rows())
        parts = table.all_rows().partition_by(lambda r: r["city"])
        children = root.add_children(
            "city",
            [
                (CategoricalLabel("city", ("a",)), parts["a"]),
                (CategoricalLabel("city", ("b",)), parts["b"]),
            ],
        )
        children[0].add_children(
            "city", [(CategoricalLabel("city", ("a",)), parts["a"])]
        )
        with pytest.raises(ValueError, match="repeats"):
            CategoryTree(root).validate()

    def test_mixed_attributes_in_level_rejected(self, table):
        root = CategoryNode(table.all_rows())
        parts = table.all_rows().partition_by(lambda r: r["city"])
        children = root.add_children(
            "city",
            [
                (CategoricalLabel("city", ("a",)), parts["a"]),
                (CategoricalLabel("city", ("b",)), parts["b"]),
            ],
        )
        children[0].add_children(
            "price", [(NumericLabel("price", 0, 1000), parts["a"])]
        )
        children[1].child_attribute = "zzz"  # simulate a corrupted tree
        children[1].children.append(
            CategoryNode(parts["b"], CategoricalLabel("zzz", ("x",)), children[1])
        )
        with pytest.raises(ValueError, match="multiple categorizing attributes"):
            CategoryTree(root).validate()

    def test_tuple_violating_label_rejected(self, table):
        root = CategoryNode(table.all_rows())
        # Put ALL tuples (including city=b) under the city=a label.
        root.add_children(
            "city", [(CategoricalLabel("city", ("a",)), table.all_rows())]
        )
        with pytest.raises(ValueError, match="violates label"):
            CategoryTree(root).validate()

    def test_overlapping_siblings_rejected(self, table):
        root = CategoryNode(table.all_rows())
        parts = table.all_rows().partition_by(lambda r: r["city"])
        root.add_children(
            "city",
            [
                (CategoricalLabel("city", ("a", "b")), table.all_rows()),
                (CategoricalLabel("city", ("b",)), parts["b"]),
            ],
        )
        with pytest.raises(ValueError, match="overlaps a sibling"):
            CategoryTree(root).validate()
