"""Property-based tests for the SQL round-trip (hypothesis).

Random queries in the workload dialect must survive format -> parse ->
format unchanged (fixed point), and parsing must preserve the semantic
content (conditions per attribute).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational.expressions import Conjunction, InPredicate, RangePredicate
from repro.relational.query import SelectQuery
from repro.sql.compiler import parse_query
from repro.sql.formatter import format_query
from repro.workload.model import WorkloadQuery


identifiers = st.sampled_from(
    ["neighborhood", "city", "price", "bedroomcount", "squarefootage"]
)

text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" ,.'-"),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip())

int_values = st.integers(min_value=0, max_value=5_000_000)


@st.composite
def in_predicates(draw):
    attribute = draw(st.sampled_from(["neighborhood", "city", "propertytype"]))
    values = draw(st.lists(text_values, min_size=1, max_size=5, unique=True))
    return InPredicate(attribute, values)


@st.composite
def range_predicates(draw):
    attribute = draw(st.sampled_from(["price", "bedroomcount", "squarefootage"]))
    low = draw(int_values)
    high = draw(int_values.filter(lambda v: v >= low))
    return RangePredicate(attribute, float(low), float(high))


@st.composite
def queries(draw):
    in_parts = draw(st.lists(in_predicates(), max_size=2))
    range_parts = draw(st.lists(range_predicates(), max_size=2))
    parts = in_parts + range_parts
    seen: set[str] = set()
    unique_parts = []
    for part in parts:
        attribute = next(iter(part.attributes()))
        if attribute not in seen:
            seen.add(attribute)
            unique_parts.append(part)
    return SelectQuery("ListProperty", Conjunction(unique_parts))


class TestRoundTrip:
    @given(queries())
    def test_format_parse_fixed_point(self, query):
        sql = format_query(query)
        assert format_query(parse_query(sql)) == sql

    @given(queries())
    def test_conditions_preserved(self, query):
        original = WorkloadQuery.from_query(query)
        reparsed = WorkloadQuery.from_sql(original.to_sql())
        assert set(reparsed.conditions) == set(original.conditions)
        for attribute in original.conditions:
            assert reparsed.in_values(attribute) == original.in_values(attribute)
            assert reparsed.range_bounds(attribute) == original.range_bounds(
                attribute
            )

    @given(queries())
    def test_parsed_query_is_executable_shape(self, query):
        reparsed = parse_query(format_query(query))
        assert reparsed.table_name == "ListProperty"
