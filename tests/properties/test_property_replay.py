"""Property-based tests: replay invariants over random trees and queries."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig
from repro.explore.exploration import (
    relevant_count,
    replay_all,
    replay_few,
    replay_one,
)
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload


SCHEMA = TableSchema(
    "T",
    (
        Attribute("color", DataType.TEXT, AttributeKind.CATEGORICAL),
        Attribute("size", DataType.INT, AttributeKind.NUMERIC),
    ),
)

CONFIG = CategorizerConfig(
    max_tuples_per_category=5,
    elimination_threshold=0.0,
    bucket_count=3,
    separation_intervals={"size": 10.0},
)

WORKLOAD = Workload.from_sql_strings(
    [
        "SELECT * FROM T WHERE color IN ('red') AND size BETWEEN 10 AND 40",
        "SELECT * FROM T WHERE color IN ('blue', 'green') AND size BETWEEN 20 AND 60",
        "SELECT * FROM T WHERE size BETWEEN 30 AND 70",
        "SELECT * FROM T WHERE size BETWEEN 50 AND 90 AND color IN ('red')",
        "SELECT * FROM T WHERE color IN ('green')",
    ]
)

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "color": st.sampled_from(["red", "green", "blue"]),
            "size": st.integers(min_value=0, max_value=100),
        }
    ),
    min_size=1,
    max_size=80,
)


@st.composite
def explorations(draw):
    parts = []
    if draw(st.booleans()):
        colors = draw(
            st.lists(
                st.sampled_from(["red", "green", "blue"]),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        parts.append("color IN (%s)" % ", ".join(f"'{c}'" for c in colors))
    low = draw(st.integers(min_value=0, max_value=90))
    high = draw(st.integers(min_value=low, max_value=100))
    parts.append(f"size BETWEEN {low} AND {high}")
    return WorkloadQuery.from_sql("SELECT * FROM T WHERE " + " AND ".join(parts))


def build_tree(rows):
    table = Table(SCHEMA)
    table.extend(rows)
    stats = preprocess_workload(WORKLOAD, SCHEMA, {"size": 10.0})
    return CostBasedCategorizer(stats, CONFIG).categorize(
        table.all_rows(), SelectQuery("T")
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, w=explorations())
def test_replay_cost_ordering(rows, w):
    """ONE <= FEW(k) <= ALL for every deterministic replay."""
    tree = build_tree(rows)
    one = replay_one(tree, w).items_examined
    all_ = replay_all(tree, w).items_examined
    for k in (1, 2, 4):
        few = replay_few(tree, w, k).items_examined
        assert one - 1e-9 <= few <= all_ + 1e-9
    assert one <= all_ + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, w=explorations())
def test_replay_found_iff_relevant_exists(rows, w):
    """The ONE replay finds a tuple exactly when the relevant set is reachable.

    Every relevant tuple lives under labels overlapping W (a tuple
    satisfying W satisfies every label predicate weaker than W on the
    drill path), so found_relevant must equal relevant_count > 0.
    """
    tree = build_tree(rows)
    total = relevant_count(tree, w)
    result = replay_one(tree, w)
    assert result.found_relevant == (total > 0)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, w=explorations())
def test_replay_few_finds_min_of_k_and_total(rows, w):
    tree = build_tree(rows)
    total = relevant_count(tree, w)
    for k in (1, 3, 10):
        assert replay_few(tree, w, k).relevant_found == min(k, total)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, w=explorations())
def test_replay_all_examines_at_most_everything(rows, w):
    tree = build_tree(rows)
    result = replay_all(tree, w)
    total_labels = sum(len(n.children) for n in tree.nodes())
    assert result.tuples_examined <= len(rows)
    assert result.labels_examined <= total_labels
