"""Property-based tests: serialization round-trip on random trees."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig
from repro.core.serialize import tree_from_json, tree_to_json
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


SCHEMA = TableSchema(
    "T",
    (
        Attribute("color", DataType.TEXT, AttributeKind.CATEGORICAL),
        Attribute("size", DataType.INT, AttributeKind.NUMERIC),
    ),
)

CONFIG = CategorizerConfig(
    max_tuples_per_category=4,
    elimination_threshold=0.0,
    bucket_count=3,
    separation_intervals={"size": 10.0},
)

WORKLOAD = Workload.from_sql_strings(
    [
        "SELECT * FROM T WHERE color IN ('red') AND size BETWEEN 10 AND 40",
        "SELECT * FROM T WHERE color IN ('blue', 'green')",
        "SELECT * FROM T WHERE size BETWEEN 30 AND 70",
        "SELECT * FROM T WHERE size BETWEEN 50 AND 90 AND color IN ('red')",
    ]
)

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "color": st.sampled_from(["red", "green", "blue"]),
            "size": st.integers(min_value=0, max_value=100),
        }
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy)
def test_serialize_round_trip_preserves_everything(rows):
    table = Table(SCHEMA)
    table.extend(rows)
    stats = preprocess_workload(WORKLOAD, SCHEMA, {"size": 10.0})
    tree = CostBasedCategorizer(stats, CONFIG).categorize(
        table.all_rows(), SelectQuery("T")
    )
    rebuilt = tree_from_json(tree_to_json(tree), table.all_rows())
    rebuilt.validate()
    originals = list(tree.nodes())
    restored = list(rebuilt.nodes())
    assert len(originals) == len(restored)
    for a, b in zip(originals, restored):
        assert a.display() == b.display()
        assert a.rows.indices == b.rows.indices
        assert a.child_attribute == b.child_attribute
