"""Property-based tests on count tables: the indexes vs brute force."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.workload.counts import OccurrenceCounts, RangeIndex, SplitPointsTable


bounded = st.floats(min_value=0, max_value=1_000, allow_nan=False)


@st.composite
def range_lists(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    ranges = []
    for _ in range(count):
        low = draw(bounded)
        high = draw(bounded.filter(lambda v: v >= low))
        ranges.append((low, high))
    return ranges


class TestRangeIndexAgainstBruteForce:
    @given(range_lists(), bounded, bounded)
    def test_half_open_counts_match(self, ranges, a, b):
        low, high = min(a, b), max(a, b)
        index = RangeIndex("x")
        for r_low, r_high in ranges:
            index.record_range(r_low, r_high)
        index.finalize()
        brute = sum(
            1 for r_low, r_high in ranges
            if r_low < high and r_high >= low  # overlap with [low, high)
        )
        assert index.count_overlapping(low, high) == brute

    @given(range_lists(), bounded, bounded)
    def test_closed_counts_match(self, ranges, a, b):
        low, high = min(a, b), max(a, b)
        index = RangeIndex("x")
        for r_low, r_high in ranges:
            index.record_range(r_low, r_high)
        brute = sum(
            1 for r_low, r_high in ranges
            if r_low <= high and r_high >= low  # overlap with [low, high]
        )
        assert index.count_overlapping(low, high, high_inclusive=True) == brute

    @given(range_lists())
    def test_full_domain_counts_everything(self, ranges):
        index = RangeIndex("x")
        for r_low, r_high in ranges:
            index.record_range(r_low, r_high)
        assert index.count_overlapping(-math.inf, math.inf) == len(ranges)


class TestSplitPointsProperties:
    @given(
        st.lists(
            st.tuples(bounded, bounded).map(lambda t: (min(t), max(t))),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from([1.0, 5.0, 25.0]),
    )
    def test_goodness_mass_conserved(self, ranges, interval):
        """Total start+end mass equals 2 x #finite-bounded ranges."""
        table = SplitPointsTable("x", interval)
        for low, high in ranges:
            table.record_range(low, high)
        rows = table.rows_in_range(-math.inf, math.inf)
        assert sum(r.goodness for r in rows) == 2 * len(ranges)

    @given(bounded, st.sampled_from([1.0, 2.5, 10.0]))
    def test_snap_idempotent_and_on_grid(self, value, interval):
        table = SplitPointsTable("x", interval)
        snapped = table.snap(value)
        assert table.snap(snapped) == snapped
        assert abs(snapped / interval - round(snapped / interval)) < 1e-9

    @given(
        st.lists(st.tuples(bounded, bounded).map(lambda t: (min(t), max(t))),
                 min_size=1, max_size=30)
    )
    def test_best_splitpoints_sorted_by_goodness(self, ranges):
        table = SplitPointsTable("x", 5.0)
        for low, high in ranges:
            table.record_range(low, high)
        best = table.best_splitpoints(-1, 1_001)
        scores = [table.goodness(p) for p in best]
        assert scores == sorted(scores, reverse=True)


class TestOccurrenceProperties:
    @given(
        st.lists(
            st.lists(st.sampled_from("abcdef"), min_size=1, max_size=4),
            min_size=1,
            max_size=25,
        )
    )
    def test_order_by_occurrence_is_a_permutation_sorted_by_occ(self, queries):
        occ = OccurrenceCounts("x")
        for values in queries:
            occ.record_values(values)
        universe = sorted({v for values in queries for v in values})
        ordered = occ.order_by_occurrence(universe)
        assert sorted(ordered) == universe
        counts = [occ.occ(v) for v in ordered]
        assert counts == sorted(counts, reverse=True)

    @given(
        st.lists(
            st.lists(st.sampled_from("abcdef"), min_size=1, max_size=4),
            min_size=1,
            max_size=25,
        )
    )
    def test_occ_never_exceeds_query_count(self, queries):
        occ = OccurrenceCounts("x")
        for values in queries:
            occ.record_values(values)
        for value in "abcdef":
            assert 0 <= occ.occ(value) <= len(queries)
