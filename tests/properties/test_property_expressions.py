"""Property-based tests for predicate semantics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import InPredicate, RangePredicate


finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def ranges(draw):
    low = draw(finite_floats)
    high = draw(finite_floats.filter(lambda v: v >= low))
    inclusive = draw(st.booleans())
    return RangePredicate("x", low, high, high_inclusive=inclusive)


class TestRangeOverlap:
    @given(ranges(), ranges())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(ranges())
    def test_overlap_is_reflexive_for_nonempty(self, a):
        # A closed range always admits a value; a half-open range is empty
        # only when low == high.
        if a.high_inclusive or a.low < a.high:
            assert a.overlaps(a)

    @given(ranges(), ranges(), finite_floats)
    def test_witness_implies_overlap(self, a, b, point):
        """A value satisfying both predicates forces overlaps() to be True."""
        if a.matches({"x": point}) and b.matches({"x": point}):
            assert a.overlaps(b)

    @given(ranges(), finite_floats)
    def test_matches_consistent_with_bounds(self, a, point):
        if a.matches({"x": point}):
            assert a.low <= point
            assert point < a.high or (a.high_inclusive and point == a.high)


class TestInOverlap:
    values = st.frozensets(st.integers(min_value=0, max_value=30), min_size=1)

    @given(values, values)
    def test_overlap_iff_intersection(self, a_values, b_values):
        a = InPredicate("x", sorted(a_values))
        b = InPredicate("x", sorted(b_values))
        assert a.overlaps(b) == bool(a_values & b_values)

    @given(values, st.integers(min_value=0, max_value=40))
    def test_matches_iff_membership(self, values, probe):
        pred = InPredicate("x", sorted(values))
        assert pred.matches({"x": probe}) == (probe in values)
