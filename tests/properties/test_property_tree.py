"""Property-based tests on category-tree invariants (hypothesis).

Random small relations + random workloads -> the categorizer must always
produce a structurally valid tree whose tuple bookkeeping is exact.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import CategorizerConfig
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


SCHEMA = TableSchema(
    "T",
    (
        Attribute("color", DataType.TEXT, AttributeKind.CATEGORICAL),
        Attribute("size", DataType.INT, AttributeKind.NUMERIC),
    ),
)

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "color": st.sampled_from(["red", "green", "blue", "black"]),
            "size": st.integers(min_value=0, max_value=100),
        }
    ),
    min_size=1,
    max_size=120,
)


@st.composite
def workloads(draw):
    statements = []
    count = draw(st.integers(min_value=2, max_value=12))
    for _ in range(count):
        parts = []
        if draw(st.booleans()):
            colors = draw(
                st.lists(
                    st.sampled_from(["red", "green", "blue", "black"]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            rendered = ", ".join(f"'{c}'" for c in colors)
            parts.append(f"color IN ({rendered})")
        low = draw(st.integers(min_value=0, max_value=90))
        high = draw(st.integers(min_value=low, max_value=100))
        parts.append(f"size BETWEEN {low} AND {high}")
        statements.append("SELECT * FROM T WHERE " + " AND ".join(parts))
    return Workload.from_sql_strings(statements)


def build_table(rows):
    table = Table(SCHEMA)
    table.extend(rows)
    return table


CONFIG = CategorizerConfig(
    max_tuples_per_category=5,
    elimination_threshold=0.0,
    bucket_count=3,
    separation_intervals={"size": 10.0},
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, workload=workloads())
def test_cost_based_tree_always_valid(rows, workload):
    table = build_table(rows)
    stats = preprocess_workload(workload, SCHEMA, {"size": 10.0})
    tree = CostBasedCategorizer(stats, CONFIG).categorize(
        table.all_rows(), SelectQuery("T")
    )
    tree.validate()
    assert tree.result_size == len(rows)
    # Leaf tuple-sets are disjoint and within the root's tuples.
    leaf_indices = [i for leaf in tree.leaves() for i in leaf.rows.indices]
    assert len(leaf_indices) == len(set(leaf_indices))
    assert set(leaf_indices) <= set(tree.root.rows.indices)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, workload=workloads())
def test_baseline_trees_always_valid(rows, workload):
    table = build_table(rows)
    stats = preprocess_workload(workload, SCHEMA, {"size": 10.0})
    for categorizer in (
        NoCostCategorizer(stats, CONFIG, attribute_set=("color", "size")),
        AttrCostCategorizer(stats, CONFIG, attribute_set=("color", "size")),
    ):
        tree = categorizer.categorize(table.all_rows(), SelectQuery("T"))
        tree.validate()
        assert tree.result_size == len(rows)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, workload=workloads())
def test_estimated_costs_nonnegative_and_bounded(rows, workload):
    """CostOne <= CostAll <= a generous bound for every subtree."""
    from repro.core.cost import CostModel
    from repro.core.probability import ProbabilityEstimator

    table = build_table(rows)
    stats = preprocess_workload(workload, SCHEMA, {"size": 10.0})
    tree = CostBasedCategorizer(stats, CONFIG).categorize(
        table.all_rows(), SelectQuery("T")
    )
    model = CostModel(ProbabilityEstimator(stats), CONFIG)
    annotations = model.annotate(tree)
    for node in tree.nodes():
        costs = annotations[id(node)]
        assert costs.cost_all >= 0
        assert costs.cost_one >= 0
        assert costs.cost_one <= costs.cost_all + 1e-9
        # No exploration can exceed examining every tuple and every label.
        bound = node.tuple_count + sum(
            len(n.children) for n in node.walk()
        ) * CONFIG.label_cost
        assert costs.cost_all <= bound + 1e-6
