"""Table-scoped routing on both HTTP front ends.

One server, two relations: every route must honor the ``table`` body
field / ``?table=`` query parameter, answer unknown tables with the 404
``UnknownTable`` envelope, stamp defaulted (table-less) requests with a
``Deprecation`` header, and keep /healthz and /metrics per-table.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import perf
from repro.catalog import Catalog, DatasetDescriptor
from repro.serving.http import make_server, serve_in_thread
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService

HOMES_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"
MOVIES_SQL = "SELECT * FROM Movies WHERE year >= 2000"


def two_table_catalog(homes_table, statistics) -> Catalog:
    movies_table, movies_statistics = DatasetDescriptor(
        name="Movies", generator="movies", rows=300, workload_queries=100
    ).build()
    return Catalog.of(
        CategorizationService(
            Relation(homes_table, statistics.copy()), batch_size=4
        ),
        CategorizationService(
            Relation(movies_table, movies_statistics), batch_size=4
        ),
    )


@pytest.fixture
def server(homes_table, statistics):
    server = make_server(two_table_catalog(homes_table, statistics), port=0)
    serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.read().decode("utf-8")


class TestTableRouting:
    def test_body_field_routes_to_named_relation(self, server):
        _, headers, body = _post(
            server, "/categorize", {"sql": MOVIES_SQL, "table": "Movies"}
        )
        assert body["table"] == "Movies"
        assert body["row_count"] > 0
        assert "Deprecation" not in headers

    def test_query_param_routes_too(self, server):
        _, headers, body = _post(
            server, "/categorize?table=Movies", {"sql": MOVIES_SQL}
        )
        assert body["table"] == "Movies"
        assert "Deprecation" not in headers

    def test_body_field_wins_over_query_param(self, server):
        _, _, body = _post(
            server,
            "/categorize?table=ListProperty",
            {"sql": MOVIES_SQL, "table": "Movies"},
        )
        assert body["table"] == "Movies"

    def test_tableless_request_defaults_with_deprecation_header(self, server):
        _, headers, body = _post(server, "/categorize", {"sql": HOMES_SQL})
        assert body["table"] == "ListProperty"
        assert headers.get("Deprecation") == "true"

    def test_unknown_table_is_404_envelope(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/categorize", {"sql": HOMES_SQL, "table": "Nope"})
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "UnknownTable"
        assert body["error"]["detail"]["available"] == ["ListProperty", "Movies"]

    def test_non_string_table_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/categorize", {"sql": HOMES_SQL, "table": 7})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "InvalidRequest"

    def test_batch_and_record_take_the_table_dimension(self, server):
        _, _, batch = _post(
            server,
            "/categorize_batch",
            {"sqls": [MOVIES_SQL], "table": "Movies"},
        )
        assert batch["table"] == "Movies"
        assert batch["count"] == 1
        _, _, ack = _post(
            server, "/record", {"sql": MOVIES_SQL, "table": "Movies"}
        )
        assert ack["status"] == "recorded"
        assert ack["table"] == "Movies"

    def test_record_moves_only_the_named_relation(self, server):
        before = json.loads(_get(server, "/healthz"))["tables"]
        for _ in range(4):
            _post(server, "/record", {"sql": MOVIES_SQL, "table": "Movies"})
        after = json.loads(_get(server, "/healthz"))["tables"]
        assert after["Movies"]["epoch"] == before["Movies"]["epoch"] + 1
        assert after["ListProperty"]["epoch"] == before["ListProperty"]["epoch"]


class TestObservability:
    def test_healthz_enumerates_tables(self, server):
        health = json.loads(_get(server, "/healthz"))
        assert health["default_table"] == "ListProperty"
        assert set(health["tables"]) == {"ListProperty", "Movies"}
        # Legacy single-table fields still sit at the top level, fed by
        # the default relation.
        assert health["table"] == "ListProperty"
        assert "durability" in health

    def test_healthz_table_param_narrows_top_level(self, server):
        health = json.loads(_get(server, "/healthz?table=Movies"))
        assert health["table"] == "Movies"
        assert set(health["tables"]) == {"ListProperty", "Movies"}

    def test_metrics_carry_per_table_gauges(self, server, perf_on):
        metrics = _get(server, "/metrics")
        for table in ("ListProperty", "Movies"):
            assert f'repro_serve_epoch{{table="{table}"}}' in metrics
            assert f'repro_serve_table_rows{{table="{table}"}}' in metrics


class TestAsyncFrontEnd:
    @pytest.fixture
    def async_server(self, homes_table, statistics):
        from repro.serving.aserve import start_in_thread

        handle = start_in_thread(two_table_catalog(homes_table, statistics))
        yield handle
        handle.stop()

    def _post(self, handle, path, payload):
        host, port = handle.address
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return dict(response.headers), json.loads(response.read())

    def test_routes_and_deprecation_header(self, async_server):
        headers, body = self._post(
            async_server, "/categorize", {"sql": MOVIES_SQL, "table": "Movies"}
        )
        assert body["table"] == "Movies"
        assert "Deprecation" not in headers
        headers, body = self._post(
            async_server, "/categorize", {"sql": HOMES_SQL}
        )
        assert body["table"] == "ListProperty"
        assert headers.get("Deprecation") == "true"

    def test_unknown_table_is_404_envelope(self, async_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                async_server, "/categorize", {"sql": HOMES_SQL, "table": "Nope"}
            )
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "UnknownTable"
        assert body["error"]["detail"]["table"] == "Nope"

    def test_healthz_enumerates_tables(self, async_server):
        host, port = async_server.address
        with urllib.request.urlopen(
            f"http://{host}:{port}/healthz", timeout=10
        ) as response:
            health = json.loads(response.read())
        assert set(health["tables"]) == {"ListProperty", "Movies"}
