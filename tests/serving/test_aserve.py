"""Tests for the asyncio front end: protocol, coalescing, shedding.

The concurrency tests block the *service* (not the server) behind
threading events, so the interesting interleavings — N identical
requests in flight at once, a full waiting room — are constructed
deterministically instead of hoping a timing race lands the right way.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import socket
import threading
import time

import pytest

from repro.serving.aserve import (
    AdmissionGate,
    HttpRequest,
    Overloaded,
    Singleflight,
    start_in_thread,
)
from repro.serving.http import MAX_BODY_BYTES

from tests.serving.conftest import SERVE_SQL

SQL_A = "SELECT * FROM ListProperty WHERE price <= 300000"
SQL_B = "SELECT * FROM ListProperty WHERE bedroomcount = 3"
SQL_C = "SELECT * FROM ListProperty WHERE price >= 500000"


@contextlib.contextmanager
def running(service, **options):
    handle = start_in_thread(service, **options)
    try:
        yield handle
    finally:
        handle.stop()


def _request(handle, method, path, payload=None, timeout=30.0):
    """One request on a fresh connection → (status, headers, json body)."""
    host, port = handle.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body, headers)
        response = connection.getresponse()
        raw = response.read()
        decoded = json.loads(raw) if raw and raw.strip().startswith(b"{") else raw
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, headers, decoded
    finally:
        connection.close()


def _read_response(stream):
    """Parse one HTTP response (status, headers, body) off a makefile."""
    status_line = stream.readline()
    assert status_line, "connection closed before a response arrived"
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = stream.read(int(headers.get("content-length", "0")))
    return status, headers, body


def _wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


class _BlockingService:
    """Wraps ``service.categorize`` so the test controls when it returns."""

    def __init__(self, service, block_first_only=False):
        self.calls = []
        self.started = threading.Event()
        self.release = threading.Event()
        self._block_first_only = block_first_only
        self._original = service.categorize
        service.categorize = self  # instance attribute shadows the method

    def __call__(self, sql, **kwargs):
        should_block = not (self._block_first_only and self.started.is_set())
        self.calls.append(sql)
        self.started.set()
        if should_block:
            assert self.release.wait(timeout=30), "test never released the service"
        return self._original(sql, **kwargs)


class TestEndpoints:
    """The async server speaks the same routes as the threading one."""

    def test_healthz_and_metrics(self, make_service, perf_on):
        with running(make_service()) as handle:
            status, _, payload = _request(handle, "GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            _request(handle, "POST", "/categorize", {"sql": SERVE_SQL})
            status, headers, text = _request(handle, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            assert b"repro_http_requests_by_route_total" in text

    def test_categorize_roundtrip(self, make_service):
        with running(make_service()) as handle:
            status, _, payload = _request(
                handle, "POST", "/categorize", {"sql": SERVE_SQL, "render": True}
            )
            assert status == 200
            assert payload["rung"] == "full"
            assert payload["row_count"] > 0
            assert payload["trace_id"].startswith("req-")
            assert "rendering" in payload

    def test_categorize_batch(self, make_service):
        with running(make_service()) as handle:
            status, _, payload = _request(
                handle, "POST", "/categorize_batch", {"sqls": [SQL_A, SQL_B]}
            )
            assert status == 200
            assert payload["count"] == 2
            assert {r["epoch"] for r in payload["results"]} == {payload["epoch"]}

    def test_record_roundtrip(self, make_service):
        with running(make_service(batch_size=2)) as handle:
            status, _, payload = _request(
                handle, "POST", "/record", {"sql": SQL_B}
            )
            assert status == 200
            assert payload["status"] == "recorded"
            _request(handle, "POST", "/record", {"sql": SQL_B})
            _, _, health = _request(handle, "GET", "/healthz")
            assert health["epoch"] == 1  # batch of 2 published

    def test_responses_carry_x_trace_id(self, make_service):
        with running(make_service()) as handle:
            _, headers, payload = _request(
                handle, "POST", "/categorize", {"sql": SERVE_SQL}
            )
            assert headers["x-trace-id"] == payload["trace_id"]
            _, headers, payload = _request(
                handle, "POST", "/categorize_batch", {"sqls": [SQL_A, SQL_B]}
            )
            assert headers["x-trace-id"] == payload["trace_id"]
            assert all(
                r["trace_id"].startswith(payload["trace_id"] + "#")
                for r in payload["results"]
            )
            _, headers, _ = _request(handle, "POST", "/record", {"sql": SQL_B})
            assert headers["x-trace-id"].startswith("req-")

    def test_trace_request_bypasses_coalescing_and_traces(self, make_service):
        with running(make_service()) as handle:
            _, _, payload = _request(
                handle, "POST", "/categorize", {"sql": SERVE_SQL, "trace": True}
            )
            assert payload["decision_trace"]["trace_id"] == payload["trace_id"]


class TestErrorMapping:
    def test_bad_sql_is_400_with_reason(self, make_service):
        with running(make_service()) as handle:
            status, _, payload = _request(
                handle, "POST", "/categorize", {"sql": "SELECT FROM WHERE"}
            )
            assert status == 400
            assert payload["error"]["code"] == "SqlError"
            assert payload["error"]["detail"]["reason"] == "sql"

    def test_bad_json_is_400(self, make_service):
        with running(make_service()) as handle:
            host, port = handle.address
            connection = http.client.HTTPConnection(host, port, timeout=10)
            try:
                connection.request(
                    "POST", "/categorize", b"not json",
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 400
                assert payload["error"]["code"] == "InvalidRequest"
                assert payload["error"]["detail"]["reason"] == "request"
            finally:
                connection.close()

    def test_unknown_endpoint_is_404(self, make_service):
        with running(make_service()) as handle:
            status, _, _ = _request(handle, "GET", "/nope")
            assert status == 404
            status, _, _ = _request(handle, "POST", "/nope", {"sql": SQL_A})
            assert status == 404

    def test_degradation_is_not_an_error(self, make_service):
        with running(make_service()) as handle:
            status, _, payload = _request(
                handle, "POST", "/categorize",
                {"sql": SERVE_SQL, "budget": "showtuples"},
            )
            assert status == 200
            assert payload["rung"] == "showtuples"


class TestProtocol:
    """Raw-socket HTTP/1.1 behavior: keep-alive, pipelining, framing."""

    def test_keep_alive_serves_sequential_requests_on_one_socket(
        self, make_service
    ):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                stream = sock.makefile("rb")
                for _ in range(3):
                    sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    status, headers, body = _read_response(stream)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    assert json.loads(body)["status"] == "ok"

    def test_pipelined_requests_answered_in_order(self, make_service):
        body = json.dumps({"sql": SERVE_SQL}).encode()
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=30) as sock:
                sock.sendall(
                    b"POST /categorize HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                    + b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                stream = sock.makefile("rb")
                first = _read_response(stream)
                second = _read_response(stream)
        assert first[0] == 200 and json.loads(first[2])["rung"] == "full"
        assert second[0] == 200 and json.loads(second[2])["status"] == "ok"

    def test_connection_close_is_honored(self, make_service):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n"
                )
                stream = sock.makefile("rb")
                status, headers, _ = _read_response(stream)
                assert status == 200
                assert headers["connection"] == "close"
                assert stream.read() == b""  # server closed after the reply

    def test_http10_defaults_to_close(self, make_service):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
                stream = sock.makefile("rb")
                status, headers, _ = _read_response(stream)
                assert status == 200
                assert headers["connection"] == "close"
                assert stream.read() == b""

    def test_idle_keep_alive_connection_is_reaped(self, make_service):
        with running(make_service(), keep_alive_timeout_s=0.3) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.settimeout(10)
                assert sock.recv(1) == b""  # reaped without a byte sent

    def test_malformed_request_line_is_400_and_closes(self, make_service):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                stream = sock.makefile("rb")
                status, headers, _ = _read_response(stream)
                assert status == 400
                assert headers["connection"] == "close"
                assert stream.read() == b""

    def test_malformed_content_length_is_400(self, make_service):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(
                    b"POST /categorize HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                status, _, body = _read_response(sock.makefile("rb"))
                assert status == 400
                assert b"banana" in body

    def test_oversize_body_is_rejected(self, make_service):
        with running(make_service(), max_body_bytes=64) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(
                    b"POST /categorize HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 100000\r\n\r\n"
                )
                status, _, body = _read_response(sock.makefile("rb"))
                assert status == 400
                assert b"64" in body

    def test_chunked_bodies_are_rejected(self, make_service):
        with running(make_service()) as handle:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.sendall(
                    b"POST /categorize HTTP/1.1\r\nHost: t\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                )
                status, _, body = _read_response(sock.makefile("rb"))
                assert status == 400
                assert b"chunked" in body


class TestCoalescing:
    def test_identical_inflight_requests_compute_once(
        self, make_service, perf_on
    ):
        service = make_service(cache_capacity=0)
        blocker = _BlockingService(service)
        clients = 5
        results = []

        def client():
            results.append(_request(handle, "POST", "/categorize", {"sql": SQL_A}))

        with running(service, max_inflight=4, max_queue=32) as handle:
            threads = [
                threading.Thread(target=client, daemon=True) for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            # The leader is inside the service; hold it there until every
            # follower has joined its flight (counted on aserve.coalesced),
            # then let the one computation finish.
            blocker.started.wait(timeout=30)
            _wait_for(
                lambda: perf_on.counters.get("aserve.coalesced", 0) >= clients - 1,
                message="followers to join the flight",
            )
            blocker.release.set()
            for thread in threads:
                thread.join(timeout=30)

        assert len(blocker.calls) == 1  # exactly one engine computation
        assert [status for status, _, _ in results] == [200] * clients
        trace_ids = {payload["trace_id"] for _, _, payload in results}
        assert len(trace_ids) == 1  # everyone shares the leader's result
        coalesced = [p for _, _, p in results if p.get("coalesced")]
        assert len(coalesced) == clients - 1
        assert perf_on.counters["aserve.coalesced"] == clients - 1

    def test_distinct_requests_do_not_coalesce(self, make_service, perf_on):
        service = make_service(cache_capacity=0)
        with running(service) as handle:
            for sql in (SQL_A, SQL_B, SQL_C):
                status, _, _ = _request(handle, "POST", "/categorize", {"sql": sql})
                assert status == 200
        assert perf_on.counters.get("aserve.coalesced", 0) == 0

    def test_invalid_sql_rejected_before_admission(self, make_service, perf_on):
        service = make_service()
        with running(service, max_inflight=1, max_queue=0) as handle:
            status, _, payload = _request(
                handle, "POST", "/categorize", {"sql": "SELECT FROM WHERE"}
            )
        assert status == 400
        assert payload["error"]["code"] == "SqlError"
        assert perf_on.gauges.get("aserve.waiting", 0) == 0


class TestShedding:
    def test_full_waiting_room_sheds_with_retry_after(
        self, make_service, perf_on
    ):
        service = make_service(cache_capacity=0)
        blocker = _BlockingService(service)
        answers = {}

        def client(name, sql):
            answers[name] = _request(handle, "POST", "/categorize", {"sql": sql})

        with running(
            service, max_inflight=1, max_queue=1, retry_after_s=2.0
        ) as handle:
            thread_a = threading.Thread(target=client, args=("a", SQL_A), daemon=True)
            thread_a.start()
            blocker.started.wait(timeout=30)  # A holds the one executor slot
            thread_b = threading.Thread(target=client, args=("b", SQL_B), daemon=True)
            thread_b.start()
            _wait_for(
                lambda: handle.frontend.gate.waiting >= 1,
                message="B to enter the waiting room",
            )
            # The room is now full: C must be shed *immediately* (while A
            # and B are still blocked), answered 503 with a Retry-After.
            status, headers, payload = _request(
                handle, "POST", "/categorize", {"sql": SQL_C}, timeout=10
            )
            assert status == 503
            assert headers["retry-after"] == "2"
            assert payload["error"]["code"] == "Shed"
            assert payload["error"]["detail"]["reason"] == "overload"
            # Shed answers are still traceable end to end.
            assert headers["x-trace-id"] == payload["trace_id"]
            assert payload["trace_id"].startswith("req-")
            blocker.release.set()
            thread_a.join(timeout=30)
            thread_b.join(timeout=30)

        # Every admitted request was answered; the shed one was counted.
        assert answers["a"][0] == 200
        assert answers["b"][0] == 200
        assert perf_on.counters["aserve.shed{route=/categorize}"] == 1
        assert len(blocker.calls) == 2  # the shed request never computed

    def test_pressure_tightens_deadlines_down_the_ladder(
        self, make_service, perf_on
    ):
        service = make_service(cache_capacity=0)
        service.categorize(SERVE_SQL)  # warm the ladder's level-cost EWMA
        blocker = _BlockingService(service, block_first_only=True)
        answers = {}

        def client(name, sql):
            answers[name] = _request(handle, "POST", "/categorize", {"sql": sql})

        with running(
            service,
            max_inflight=1,
            max_queue=4,
            pressure_deadline_ms=2.0,
            min_deadline_ms=1.0,
        ) as handle:
            thread_a = threading.Thread(target=client, args=("a", SQL_A), daemon=True)
            thread_a.start()
            blocker.started.wait(timeout=30)
            thread_b = threading.Thread(target=client, args=("b", SQL_B), daemon=True)
            thread_b.start()
            _wait_for(
                lambda: handle.frontend.gate.waiting >= 1,
                message="B to queue behind A",
            )
            # C arrives at pressure 1/4: its (absent) deadline is capped at
            # ~1.75 ms, far below one level's warmed cost estimate, so the
            # ladder serves a degraded rung instead of queueing full work.
            thread_c = threading.Thread(target=client, args=("c", SQL_C), daemon=True)
            thread_c.start()
            _wait_for(
                lambda: handle.frontend.gate.waiting >= 2,
                message="C to queue behind B",
            )
            blocker.release.set()
            for thread in (thread_a, thread_b, thread_c):
                thread.join(timeout=30)

        assert answers["c"][0] == 200
        assert answers["c"][2]["rung"] != "full"  # quality shed, not the request
        assert perf_on.counters.get("aserve.tightened", 0) >= 1


class TestAdmissionGateUnit:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)

    def test_deadline_cap_ramp(self):
        gate = AdmissionGate(pressure_deadline_ms=1000.0, min_deadline_ms=5.0)
        assert gate.deadline_cap_ms(0.0) is None
        assert gate.deadline_cap_ms(1.0) == pytest.approx(5.0)
        assert gate.deadline_cap_ms(0.5) == pytest.approx(502.5)
        assert gate.deadline_cap_ms(2.0) == pytest.approx(5.0)  # clamped

    def test_zero_queue_sheds_any_concurrent_arrival(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, max_queue=0)
            release = asyncio.Event()

            async def hold():
                async with gate.admit("/categorize"):
                    await release.wait()

            holder = asyncio.ensure_future(hold())
            await asyncio.sleep(0)  # let the holder take the slot
            with pytest.raises(Overloaded):
                async with gate.admit("/categorize"):
                    pass
            release.set()
            await holder

        asyncio.run(scenario())


class TestSingleflightUnit:
    def test_leader_failure_propagates_to_followers(self):
        async def scenario():
            flights = Singleflight()
            entered = asyncio.Event()
            release = asyncio.Event()

            async def failing():
                entered.set()
                await release.wait()
                raise Overloaded(1.0)

            async def follow():
                await entered.wait()
                return await flights.run("k", failing)

            leader = asyncio.ensure_future(flights.run("k", failing))
            follower = asyncio.ensure_future(follow())
            await entered.wait()
            release.set()
            with pytest.raises(Overloaded):
                await leader
            with pytest.raises(Overloaded):
                await follower
            assert len(flights) == 0  # table drained after the failure

        asyncio.run(scenario())

    def test_flight_table_drains_after_success(self):
        async def scenario():
            flights = Singleflight()

            async def compute():
                return "tree"

            result, coalesced = await flights.run("k", compute)
            assert (result, coalesced) == ("tree", False)
            assert len(flights) == 0

        asyncio.run(scenario())


class TestHttpRequestUnit:
    def test_keep_alive_rules(self):
        def req(version, connection=None):
            headers = {"connection": connection} if connection else {}
            return HttpRequest("GET", "/", version, headers, b"")

        assert req("HTTP/1.1").keep_alive is True
        assert req("HTTP/1.1", "close").keep_alive is False
        assert req("HTTP/1.1", "Keep-Alive").keep_alive is True
        assert req("HTTP/1.0").keep_alive is False
        assert req("HTTP/1.0", "keep-alive").keep_alive is True

    def test_max_body_constant_matches_threading_server(self, make_service):
        with running(make_service()) as handle:
            assert handle.frontend.max_body_bytes == MAX_BODY_BYTES
