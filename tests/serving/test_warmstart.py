"""Warm-start snapshots: roundtrips, fail-stop verification, replay glue.

The contract under test (docs/serving.md, "Durability & warm start"):
``load_warm`` either returns state that is element-identical to what was
dumped — same columns, same count tables, same categorization tree — or
raises :class:`SnapshotMismatch` with a counted reason; and the journal
watermark stitched through ``stats.snap`` makes recovery replay exactly
the records the snapshot does not cover, no matter how many times the
process dies between snapshots.
"""

from __future__ import annotations

import pytest

from repro.data.homes import generate_homes
from repro.relational.backends import ColumnStore, schema_fingerprint
from repro.relational.schema import Attribute, TableSchema
from repro.relational.snapio import SnapshotMismatch
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.render.treeview import render_tree
from repro.serving.journal import SpillJournal
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.serving.warmstart import (
    STATS_SNAPSHOT,
    TABLE_SNAPSHOT,
    load_warm,
    write_stats_snapshot,
    write_table_snapshot,
)
from tests.serving.conftest import LOG_SQL, SERVE_SQL

RECORD_SQLS = [
    f"SELECT * FROM ListProperty WHERE bedroomcount = {n % 4 + 1}"
    for n in range(12)
]


def _columns_equal(schema, left: Table, right: Table) -> bool:
    return all(
        list(left.column(name)) == list(right.column(name))
        for name in schema.names()
    )


# -- table snapshot ----------------------------------------------------------


def test_table_snapshot_roundtrips_columnar(tmp_path):
    table = generate_homes(rows=300, seed=11, backend="columnar")
    path = write_table_snapshot(table, tmp_path)
    assert path == tmp_path / TABLE_SNAPSHOT
    store, rows = ColumnStore.load(table.schema, path)
    assert rows == len(table)
    loaded = Table.from_backend(table.schema, store, rows)
    assert _columns_equal(table.schema, table, loaded)


def test_table_snapshot_roundtrips_row_backend(tmp_path):
    table = generate_homes(rows=200, seed=12, backend="rows")
    write_table_snapshot(table, tmp_path)
    store, rows = ColumnStore.load(
        table.schema, tmp_path / TABLE_SNAPSHOT
    )
    loaded = Table.from_backend(table.schema, store, rows)
    assert _columns_equal(table.schema, table, loaded)


def test_table_snapshot_preserves_nulls_and_dictionaries(tmp_path):
    schema = TableSchema(
        "Mixed",
        (
            Attribute("city", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("price", DataType.INT, AttributeKind.NUMERIC),
            Attribute("score", DataType.FLOAT, AttributeKind.NUMERIC),
        ),
    )
    table = Table.from_columns(
        schema,
        {
            "city": ["seattle", None, "bellevue", "seattle", None],
            "price": [100, None, 300, None, 500],
            "score": [1.5, 2.5, None, 4.5, None],
        },
        backend="columnar",
    )
    write_table_snapshot(table, tmp_path)
    store, rows = ColumnStore.load(schema, tmp_path / TABLE_SNAPSHOT)
    loaded = Table.from_backend(schema, store, rows)
    assert _columns_equal(schema, table, loaded)


def test_table_snapshot_rejects_wrong_schema(tmp_path):
    table = generate_homes(rows=50, seed=13, backend="columnar")
    write_table_snapshot(table, tmp_path)
    other = TableSchema(
        "ListProperty",
        (Attribute("price", DataType.INT, AttributeKind.NUMERIC),),
    )
    assert schema_fingerprint(other) != schema_fingerprint(table.schema)
    with pytest.raises(SnapshotMismatch) as excinfo:
        ColumnStore.load(other, tmp_path / TABLE_SNAPSHOT)
    assert excinfo.value.reason == "schema"


def test_corrupted_snapshot_fails_stop_with_crc(tmp_path):
    table = generate_homes(rows=50, seed=13, backend="columnar")
    path = write_table_snapshot(table, tmp_path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(raw)
    with pytest.raises(SnapshotMismatch) as excinfo:
        ColumnStore.load(table.schema, path)
    assert excinfo.value.reason == "crc"


def test_missing_snapshot_reports_missing(tmp_path):
    table = generate_homes(rows=10, seed=13, backend="columnar")
    with pytest.raises(SnapshotMismatch) as excinfo:
        ColumnStore.load(table.schema, tmp_path / TABLE_SNAPSHOT)
    assert excinfo.value.reason == "missing"


# -- statistics snapshot -----------------------------------------------------


def test_stats_snapshot_roundtrips_the_tree(homes_table, statistics, tmp_path):
    """Warm-loaded statistics must categorize identically to the source."""
    cold = CategorizationService(Relation(homes_table, statistics.copy()))
    for sql in RECORD_SQLS:
        cold.record_query(sql)
    cold.flush()
    epoch = cold.store.pin()
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(epoch.statistics, tmp_path, epoch.number, journal_seq=0)

    warm = load_warm(homes_table.schema, tmp_path)
    assert warm.epoch == epoch.number
    assert warm.journal_seq == 0
    assert warm.statistics.total_queries == epoch.statistics.total_queries

    warmed = CategorizationService(
        Relation(warm.table, warm.statistics, initial_epoch=warm.epoch)
    )
    for sql in (SERVE_SQL, LOG_SQL):
        reference = cold.categorize(sql)
        restored = warmed.categorize(sql)
        assert restored.epoch == reference.epoch
        assert restored.rows.indices == reference.rows.indices
        assert render_tree(restored.tree) == render_tree(reference.tree)


def test_stats_snapshot_version_mismatch_fails_stop(
    homes_table, statistics, tmp_path, monkeypatch
):
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(statistics.copy(), tmp_path, epoch=0, journal_seq=0)
    monkeypatch.setattr(
        "repro.serving.warmstart.STATS_FORMAT_VERSION", 99
    )
    with pytest.raises(SnapshotMismatch) as excinfo:
        load_warm(homes_table.schema, tmp_path)
    assert excinfo.value.reason == "version"


def test_stats_snapshot_schema_mismatch_fails_stop(
    homes_table, statistics, tmp_path
):
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(statistics.copy(), tmp_path, epoch=0, journal_seq=0)
    other = TableSchema(
        "ListProperty",
        (Attribute("price", DataType.INT, AttributeKind.NUMERIC),),
    )
    with pytest.raises(SnapshotMismatch):
        load_warm(other, tmp_path)


# -- snapshot + journal replay ----------------------------------------------


def _booted_service(homes_table, statistics, tmp_path, **kwargs):
    journal = SpillJournal(tmp_path / "journal")
    service = CategorizationService(
        Relation(homes_table, statistics.copy(), journal=journal),
        batch_size=4,
        **kwargs,
    )
    return service, journal


def test_clean_shutdown_then_warm_boot_replays_nothing(
    homes_table, statistics, tmp_path
):
    service, journal = _booted_service(homes_table, statistics, tmp_path)
    for sql in RECORD_SQLS:
        service.record_query(sql)
    # Graceful shutdown: publish everything, snapshot, move the watermark.
    service.flush()
    epoch = service.store.pin()
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(
        epoch.statistics, tmp_path, epoch.number, journal_seq=journal.last_seq
    )
    journal.checkpoint(journal.last_seq)
    journal.close()

    restart_journal = SpillJournal(tmp_path / "journal")
    warm = load_warm(homes_table.schema, tmp_path)
    restarted = CategorizationService(
        Relation(
            warm.table, warm.statistics,
            journal=restart_journal, initial_epoch=warm.epoch,
        )
    )
    replayed = restarted.recover_from_journal(after_seq=warm.journal_seq)
    assert replayed == 0  # the snapshot covers the whole journal
    assert restarted.store.epoch_number == warm.epoch
    assert (
        restarted.store.pin().statistics.total_queries
        == epoch.statistics.total_queries
    )


def test_crash_between_snapshots_replays_the_journal_suffix(
    homes_table, statistics, tmp_path
):
    service, journal = _booted_service(homes_table, statistics, tmp_path)
    # Snapshot early: only the first 4 records are covered.
    for sql in RECORD_SQLS[:4]:
        service.record_query(sql)
    service.flush()
    epoch = service.store.pin()
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(
        epoch.statistics, tmp_path, epoch.number, journal_seq=journal.last_seq
    )
    watermark = journal.last_seq
    for sql in RECORD_SQLS[4:]:
        service.record_query(sql)
    journal.flush()
    # SIGKILL: drop every in-memory object, reopen from disk alone.
    del service

    restart_journal = SpillJournal(tmp_path / "journal")
    warm = load_warm(homes_table.schema, tmp_path)
    assert warm.journal_seq == watermark
    restarted = CategorizationService(
        Relation(
            warm.table, warm.statistics,
            journal=restart_journal, initial_epoch=warm.epoch,
        )
    )
    replayed = restarted.recover_from_journal(after_seq=warm.journal_seq)
    assert replayed == len(RECORD_SQLS) - 4
    assert restarted.ingestor.conserved()
    total = restarted.store.pin().statistics.total_queries
    assert total == statistics.total_queries + len(RECORD_SQLS)


def test_double_replay_is_idempotent_across_repeated_crashes(
    homes_table, statistics, tmp_path
):
    """Two boots from the same snapshot fold the journal once each.

    Replay starts from the *snapshot's* watermark, not from any state the
    previous (crashed) boot accumulated — so dying again right after
    recovery cannot double-count queries.
    """
    service, journal = _booted_service(homes_table, statistics, tmp_path)
    for sql in RECORD_SQLS:
        service.record_query(sql)
    journal.flush()
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(statistics.copy(), tmp_path, epoch=0, journal_seq=0)
    del service  # crash 1

    totals = []
    for _boot in range(2):  # boot, crash before snapshotting, boot again
        boot_journal = SpillJournal(tmp_path / "journal")
        warm = load_warm(homes_table.schema, tmp_path)
        restarted = CategorizationService(
            Relation(
                warm.table, warm.statistics,
                journal=boot_journal, initial_epoch=warm.epoch,
            )
        )
        assert restarted.recover_from_journal(
            after_seq=warm.journal_seq
        ) == len(RECORD_SQLS)
        totals.append(restarted.store.pin().statistics.total_queries)
        boot_journal.close()
    assert totals[0] == totals[1] == statistics.total_queries + len(RECORD_SQLS)


def test_fallback_to_cold_replays_the_whole_journal(
    homes_table, statistics, tmp_path
):
    """A bad snapshot costs the warm start, never the recorded queries."""
    service, journal = _booted_service(homes_table, statistics, tmp_path)
    for sql in RECORD_SQLS:
        service.record_query(sql)
    service.flush()
    epoch = service.store.pin()
    write_table_snapshot(homes_table, tmp_path)
    write_stats_snapshot(
        epoch.statistics, tmp_path, epoch.number, journal_seq=journal.last_seq
    )
    journal.close()
    # Bit rot on the stats snapshot: warm start must refuse it...
    path = tmp_path / STATS_SNAPSHOT
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(raw)
    with pytest.raises(SnapshotMismatch) as excinfo:
        load_warm(homes_table.schema, tmp_path)
    assert excinfo.value.reason == "crc"

    # ...and the cold path — fresh statistics, full replay — recovers
    # every recorded query from the journal alone.
    restart_journal = SpillJournal(tmp_path / "journal")
    cold = CategorizationService(
        Relation(homes_table, statistics.copy(), journal=restart_journal)
    )
    assert cold.recover_from_journal(after_seq=0) == len(RECORD_SQLS)
    assert cold.ingestor.conserved()
    assert (
        cold.store.pin().statistics.total_queries
        == statistics.total_queries + len(RECORD_SQLS)
    )
