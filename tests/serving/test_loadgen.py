"""Tests for the closed-loop load generator."""

from __future__ import annotations

import pytest

from repro.serving.aserve import start_in_thread
from repro.serving.http import make_server, serve_in_thread
from repro.serving.loadgen import DEFAULT_MIX, LoadReport, percentile, run_loadgen

from tests.serving.conftest import SERVE_SQL


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100, unsorted input allowed
        assert percentile(list(reversed(samples)), 0.0) == 1
        assert percentile(samples, 0.5) == 51  # round(0.5 * 99) = 50 → samples[50]
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100


class TestValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_loadgen("http://127.0.0.1:1", sqls=[])

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_loadgen("http://127.0.0.1:1", clients=0)
        with pytest.raises(ValueError, match=">= 1"):
            run_loadgen("http://127.0.0.1:1", requests_per_client=0)


class TestAgainstAsyncServer:
    def test_all_requests_answered(self, make_service):
        handle = start_in_thread(make_service(), max_inflight=4)
        try:
            report = run_loadgen(
                handle.url, clients=4, requests_per_client=3, timeout_s=60.0
            )
        finally:
            handle.stop()
        assert report.requests == 12
        assert report.responses == 12
        assert report.errors == 0
        assert report.status_counts == {200: 12}
        assert report.rung_counts.get("full", 0) == 12
        assert report.throughput_rps > 0
        assert report.p99_ms >= report.p50_ms > 0

    def test_duplicate_heavy_mix_coalesces(self, make_service):
        # One distinct query across many concurrent clients with the cache
        # off: the only way duplicates avoid recomputing is the
        # singleflight table, which the report surfaces as `coalesced`.
        handle = start_in_thread(make_service(cache_capacity=0), max_inflight=4)
        try:
            report = run_loadgen(
                handle.url,
                sqls=[SERVE_SQL],
                clients=8,
                requests_per_client=2,
                timeout_s=60.0,
            )
        finally:
            handle.stop()
        assert report.errors == 0
        assert report.responses == 16
        assert report.coalesced > 0

    def test_report_as_dict_round_trips(self, make_service):
        handle = start_in_thread(make_service())
        try:
            report = run_loadgen(handle.url, clients=2, requests_per_client=2)
        finally:
            handle.stop()
        payload = report.as_dict()
        assert payload["requests"] == 4
        assert payload["shed"] == report.shed == 0
        assert set(payload["status_counts"]) == {"200"}


class TestAgainstThreadingServer:
    def test_same_generator_drives_the_threading_server(self, make_service):
        server = make_server(make_service(), port=0)
        serve_in_thread(server)
        try:
            host, port = server.server_address[:2]
            report = run_loadgen(
                f"http://{host}:{port}",
                sqls=DEFAULT_MIX,
                clients=4,
                requests_per_client=2,
                timeout_s=60.0,
            )
        finally:
            server.shutdown()
            server.server_close()
        assert report.responses == 8
        assert report.errors == 0
        assert report.coalesced == 0  # no singleflight in the threading path


class TestLoadReportShape:
    def test_shed_counts_503s(self):
        report = LoadReport(
            clients=1, requests=4, responses=4, errors=0, elapsed_s=1.0,
            throughput_rps=4.0, p50_ms=1.0, p99_ms=2.0, mean_ms=1.5,
            status_counts={200: 3, 503: 1},
        )
        assert report.shed == 1
        assert report.as_dict()["status_counts"] == {"200": 3, "503": 1}
