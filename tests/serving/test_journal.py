"""SpillJournal: append/replay, rotation, checkpointing, crash recovery.

The durability contract under test (docs/serving.md, "Durability & warm
start"): every appended record survives process death once ``append``
returned; a torn tail is truncated and counted; a corrupt *middle*
record fail-stops recovery at the damage (never replays out of order);
and sequence numbers never repeat, even when recovery truncates records
a checkpoint already covered.
"""

from __future__ import annotations

import struct

import pytest

from repro.serving.faults import FaultInjector, InjectedCrash
from repro.serving.journal import FSYNC_POLICIES, SpillJournal

SQLS = [
    f"SELECT * FROM ListProperty WHERE bedroomcount = {n}" for n in range(1, 11)
]


def drain(journal: SpillJournal, after_seq: int = 0) -> list[tuple[int, str]]:
    return list(journal.replay(after_seq))


# -- append / replay ---------------------------------------------------------


def test_append_assigns_dense_sequences_and_replays_in_order(tmp_path):
    with SpillJournal(tmp_path) as journal:
        seqs = [journal.append(sql) for sql in SQLS]
        assert seqs == list(range(1, len(SQLS) + 1))
        assert journal.last_seq == len(SQLS)
        assert drain(journal) == list(zip(seqs, SQLS))


def test_replay_after_seq_skips_covered_prefix(tmp_path):
    with SpillJournal(tmp_path) as journal:
        for sql in SQLS:
            journal.append(sql)
        tail = drain(journal, after_seq=7)
        assert [seq for seq, _ in tail] == [8, 9, 10]
        assert [sql for _, sql in tail] == SQLS[7:]


def test_reopen_replays_everything_durable(tmp_path):
    with SpillJournal(tmp_path) as journal:
        for sql in SQLS:
            journal.append(sql)
    reopened = SpillJournal(tmp_path)
    assert drain(reopened) == list(enumerate(SQLS, start=1))
    assert reopened.truncated_records == 0
    reopened.close()


def test_unicode_payloads_round_trip(tmp_path):
    sql = "SELECT * FROM ListProperty WHERE city = 'Åré—北京'"
    with SpillJournal(tmp_path) as journal:
        journal.append(sql)
    reopened = SpillJournal(tmp_path)
    assert drain(reopened) == [(1, sql)]
    reopened.close()


@pytest.mark.parametrize("policy", FSYNC_POLICIES)
def test_fsync_policies_accepted(tmp_path, policy):
    with SpillJournal(tmp_path / policy, fsync=policy) as journal:
        journal.append(SQLS[0])
        journal.flush()
        assert drain(journal) == [(1, SQLS[0])]


def test_unknown_fsync_policy_rejected(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        SpillJournal(tmp_path, fsync="sometimes")


# -- rotation / checkpoint ---------------------------------------------------


def test_small_segment_budget_rotates(tmp_path):
    with SpillJournal(tmp_path, segment_bytes=120) as journal:
        for sql in SQLS:
            journal.append(sql)
        assert journal.segment_count > 1
        # Rotation is invisible to replay: one dense, ordered stream.
        assert drain(journal) == list(enumerate(SQLS, start=1))


def test_checkpoint_prunes_fully_covered_sealed_segments(tmp_path):
    with SpillJournal(tmp_path, segment_bytes=120) as journal:
        for sql in SQLS:
            journal.append(sql)
        before = journal.segment_count
        journal.checkpoint(journal.last_seq)
        assert journal.segment_count < before
        assert journal.checkpoint_seq == len(SQLS)
        # Covered records are gone; nothing past the watermark was lost.
        assert drain(journal, after_seq=journal.checkpoint_seq) == []


def test_checkpoint_survives_reopen(tmp_path):
    with SpillJournal(tmp_path, segment_bytes=120) as journal:
        for sql in SQLS:
            journal.append(sql)
        journal.checkpoint(6)
    reopened = SpillJournal(tmp_path, segment_bytes=120)
    assert reopened.checkpoint_seq == 6
    assert [seq for seq, _ in drain(reopened, after_seq=6)] == [7, 8, 9, 10]
    reopened.close()


# -- recovery: the empty, torn, and corrupt cases ----------------------------


def test_recovery_of_missing_directory_is_a_noop(tmp_path):
    journal = SpillJournal(tmp_path / "never-created")
    assert journal.last_seq == 0
    assert journal.truncated_records == 0
    assert drain(journal) == []
    journal.close()


def test_recovery_of_empty_journal_is_a_noop(tmp_path):
    SpillJournal(tmp_path).close()  # creates an empty active segment
    reopened = SpillJournal(tmp_path)
    assert reopened.last_seq == 0
    assert reopened.truncated_records == 0
    assert drain(reopened) == []
    reopened.close()


def _segment_paths(tmp_path):
    return sorted(tmp_path.glob("segment-*.log"))


def test_torn_final_record_is_truncated_and_counted(tmp_path):
    with SpillJournal(tmp_path) as journal:
        for sql in SQLS[:5]:
            journal.append(sql)
    # A crash mid-append leaves a partial record at the tail.
    (segment,) = _segment_paths(tmp_path)
    with open(segment, "ab") as handle:
        handle.write(struct.pack("<II", 999, 0) + b"SELECT * FR")

    reopened = SpillJournal(tmp_path)
    assert reopened.truncated_records == 1
    assert reopened.last_seq == 5
    assert drain(reopened) == list(enumerate(SQLS[:5], start=1))
    # The journal keeps working after surgery: new appends extend the seq.
    assert reopened.append(SQLS[5]) == 6
    reopened.close()


def test_corrupt_middle_record_fail_stops_and_counts_the_tail(tmp_path):
    with SpillJournal(tmp_path) as journal:
        for sql in SQLS[:6]:
            journal.append(sql)
    (segment,) = _segment_paths(tmp_path)
    raw = bytearray(segment.read_bytes())
    # Flip one payload byte of record 3 (skip records 1-2, then the header).
    offset = 0
    for _ in range(2):
        length, _crc = struct.unpack_from("<II", raw, offset)
        offset += 8 + length
    raw[offset + 8] ^= 0xFF
    segment.write_bytes(raw)

    reopened = SpillJournal(tmp_path)
    # Fail-stop: record 3 and every parseable successor (4-6) are dropped
    # and counted — replaying past damage would reorder history.
    assert reopened.truncated_records == 4
    assert drain(reopened) == list(enumerate(SQLS[:2], start=1))
    reopened.close()


def test_corruption_in_sealed_segment_drops_later_segments(tmp_path):
    with SpillJournal(tmp_path, segment_bytes=120) as journal:
        for sql in SQLS:
            journal.append(sql)
        total_segments = journal.segment_count
    assert total_segments > 2
    first, *rest = _segment_paths(tmp_path)
    raw = bytearray(first.read_bytes())
    raw[8] ^= 0xFF  # corrupt the very first record's payload
    first.write_bytes(raw)

    reopened = SpillJournal(tmp_path)
    # Every record after the damage — same segment and all later
    # segments — is counted as truncated, and the later files deleted.
    assert reopened.truncated_records == len(SQLS)
    assert drain(reopened) == []
    assert reopened.segment_count < total_segments
    reopened.close()


def test_sequences_never_reused_after_checkpointed_truncation(tmp_path):
    with SpillJournal(tmp_path) as journal:
        for sql in SQLS[:5]:
            journal.append(sql)
        journal.checkpoint(5)
    # Corrupt everything: recovery drops all five checkpointed records.
    for segment in _segment_paths(tmp_path):
        raw = bytearray(segment.read_bytes())
        raw[8] ^= 0xFF
        segment.write_bytes(raw)

    reopened = SpillJournal(tmp_path)
    # New appends must start past the checkpoint: reusing seq <= 5 would
    # make replay(after=checkpoint) silently skip brand-new records.
    assert reopened.append("SELECT * FROM ListProperty") == 6
    assert [seq for seq, _ in drain(reopened, after_seq=5)] == [6]
    reopened.close()


# -- crash-point injection ---------------------------------------------------


def test_crash_before_write_leaves_nothing(tmp_path):
    faults = FaultInjector(seed=7)
    journal = SpillJournal(tmp_path, faults=faults)
    journal.append(SQLS[0])
    faults.arm("journal.append", crash=True)
    with pytest.raises(InjectedCrash):
        journal.append(SQLS[1])
    journal.close()
    reopened = SpillJournal(tmp_path)
    assert drain(reopened) == [(1, SQLS[0])]
    assert reopened.truncated_records == 0
    reopened.close()


def test_crash_mid_append_leaves_a_recoverable_torn_tail(tmp_path):
    faults = FaultInjector(seed=7)
    journal = SpillJournal(tmp_path, faults=faults)
    journal.append(SQLS[0])
    faults.arm("journal.append.torn", crash=True)
    with pytest.raises(InjectedCrash):
        journal.append(SQLS[1])
    journal.close()  # flushes the torn header bytes, as the OS might
    reopened = SpillJournal(tmp_path)
    assert reopened.truncated_records == 1
    assert drain(reopened) == [(1, SQLS[0])]
    assert reopened.append(SQLS[1]) == 2  # and life goes on
    reopened.close()


def test_crash_after_fsync_preserves_the_record(tmp_path):
    faults = FaultInjector(seed=7)
    journal = SpillJournal(tmp_path, faults=faults)
    faults.arm("journal.append.synced", crash=True)
    with pytest.raises(InjectedCrash):
        journal.append(SQLS[0])
    journal.close()
    # The crash happened after the fsync: the record is durable even
    # though the caller never saw the append return (at-least-once).
    reopened = SpillJournal(tmp_path)
    assert drain(reopened) == [(1, SQLS[0])]
    reopened.close()


def test_crash_before_checkpoint_rename_keeps_old_watermark(tmp_path):
    faults = FaultInjector(seed=7)
    journal = SpillJournal(tmp_path, segment_bytes=120, faults=faults)
    for sql in SQLS:
        journal.append(sql)
    journal.checkpoint(3)
    faults.arm("journal.checkpoint.rename", crash=True)
    with pytest.raises(InjectedCrash):
        journal.checkpoint(8)
    journal.close()
    reopened = SpillJournal(tmp_path, segment_bytes=120)
    assert reopened.checkpoint_seq == 3  # the old watermark, atomically
    reopened.close()
