"""Serving-suite fixtures: fake clocks, private statistics, service factory.

The session-scoped ``statistics`` fixture from the root conftest is shared
read-only; serving tests that ingest queries get a private copy so epochs
never leak between tests.
"""

from __future__ import annotations

import os

import pytest

from repro import perf
from repro.serving.faults import FaultInjector
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService

#: Queries used across the suite (broad result set worth categorizing).
SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"
LOG_SQL = "SELECT * FROM ListProperty WHERE bedroomcount = 3"


class FakeClock:
    """A manually advanced monotonic clock, also usable as a sleeper."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    # sleeper interface: sleeping advances the fake time
    def sleep(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def fresh_statistics(statistics):
    """A private copy of the shared count tables (safe to ingest into)."""
    return statistics.copy()


@pytest.fixture
def injector(fake_clock):
    """A seeded injector whose delays advance the fake clock."""
    return FaultInjector(seed=7, sleeper=fake_clock.sleep)


@pytest.fixture
def make_service(homes_table, statistics):
    """Factory for services over the shared table with private statistics."""

    def _make(**kwargs) -> CategorizationService:
        kwargs.setdefault("batch_size", 8)
        relation = Relation(homes_table, statistics.copy())
        return CategorizationService(relation, **kwargs)

    return _make


@pytest.fixture
def perf_on():
    """Enable instrumentation for one test; yields the active registry."""
    perf.reset()
    perf.enable()
    yield perf.ACTIVE
    perf.reset()
    perf.disable()


def fault_rate() -> float:
    """Elevated fault rate for the CI fault-injection job (default 0)."""
    return float(os.environ.get("REPRO_FAULT_RATE", "0") or 0)
