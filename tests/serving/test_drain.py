"""Graceful drain for both front ends: finish in-flight work, then stop.

The SIGTERM contract (docs/serving.md): on drain the server stops
accepting new work, every request already inside a route body runs to
completion within the grace period, and only then does the process move
on to flushing journals and telemetry.  A request that cannot finish in
time is *not* killed — drain reports False (and counts a timeout) so the
operator knows the grace period was too short.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import http.client

import pytest

from repro.serving.aserve import AsyncFrontEnd
from repro.serving.http import drain, make_server, serve_in_thread

from .conftest import LOG_SQL


class _SlowService:
    """Delegating proxy whose ``record_query`` dawdles before ingesting.

    Everything else passes straight through to the real service, so the
    front ends see their normal API — only the route under test is slow.
    """

    def __init__(self, service, delay_s: float) -> None:
        self._service = service
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._service, name)

    def record_query(self, sql: str) -> None:
        time.sleep(self._delay_s)
        self._service.record_query(sql)


def _wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


# -- threading front end -----------------------------------------------------


def _post_record(port: int, results: list) -> None:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(
            "POST",
            "/record",
            json.dumps({"sql": LOG_SQL}),
            {"Content-Type": "application/json"},
        )
        results.append(connection.getresponse().status)
    finally:
        connection.close()


def test_threading_drain_waits_for_inflight_request(make_service):
    server = make_server(_SlowService(make_service(), delay_s=0.25))
    serve_in_thread(server)
    port = server.server_address[1]
    try:
        results: list[int] = []
        poster = threading.Thread(target=_post_record, args=(port, results))
        poster.start()
        _wait_until(lambda: server.inflight == 1)

        # Drain from the main thread (serve_forever runs on its own):
        # must block until the slow handler leaves its route body.
        assert drain(server, grace_s=5.0) is True
        assert server.inflight == 0
        poster.join(timeout=5)
        # The in-flight request was finished, not killed.
        assert results == [200]
    finally:
        server.server_close()


def test_threading_drain_times_out_on_a_stuck_handler(make_service, perf_on):
    server = make_server(_SlowService(make_service(), delay_s=1.0))
    serve_in_thread(server)
    port = server.server_address[1]
    try:
        results: list[int] = []
        poster = threading.Thread(target=_post_record, args=(port, results))
        poster.start()
        _wait_until(lambda: server.inflight == 1)

        assert drain(server, grace_s=0.05) is False
        assert perf_on.counters["http.drain_timeouts"] == 1
        # The handler is still running — drain reports, it never kills.
        poster.join(timeout=5)
        assert results == [200]
    finally:
        server.server_close()


def test_threading_drain_of_an_idle_server_is_immediate(make_service):
    server = make_server(make_service())
    serve_in_thread(server)
    try:
        started = time.monotonic()
        assert drain(server, grace_s=5.0) is True
        assert time.monotonic() - started < 1.0
    finally:
        server.server_close()


# -- asyncio front end -------------------------------------------------------


def _raw_record_request() -> bytes:
    body = json.dumps({"sql": LOG_SQL}).encode("utf-8")
    head = (
        "POST /record HTTP/1.1\r\n"
        "Host: test\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _wait_until_async(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


def test_async_drain_finishes_inflight_then_refuses_new(make_service):
    async def scenario() -> None:
        frontend = AsyncFrontEnd(_SlowService(make_service(), delay_s=0.25))
        await frontend.start()
        host, port = frontend.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_raw_record_request())
            await writer.drain()
            await _wait_until_async(lambda: frontend.gate.inflight > 0)

            assert await frontend.drain(grace_s=5.0) is True
            assert frontend.gate.inflight == 0
            assert frontend.gate.waiting == 0

            # The in-flight request got its answer before the drain ended.
            response = await asyncio.wait_for(reader.read(), timeout=5)
            assert b" 200 " in response.split(b"\r\n", 1)[0]
            writer.close()

            # The listener is gone: new connections are refused, so a load
            # balancer stops routing here while the process finishes up.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
        finally:
            await frontend.close()

    asyncio.run(scenario())


def test_async_drain_times_out_on_a_stuck_request(make_service, perf_on):
    async def scenario() -> None:
        frontend = AsyncFrontEnd(_SlowService(make_service(), delay_s=1.0))
        await frontend.start()
        host, port = frontend.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_raw_record_request())
            await writer.drain()
            await _wait_until_async(lambda: frontend.gate.inflight > 0)

            assert await frontend.drain(grace_s=0.05) is False
            assert perf_on.counters["aserve.drain_timeouts"] == 1
            # Still not killed: the stuck request completes eventually.
            response = await asyncio.wait_for(reader.read(), timeout=5)
            assert b" 200 " in response.split(b"\r\n", 1)[0]
            writer.close()
        finally:
            await frontend.close()

    asyncio.run(scenario())


def test_async_drain_of_an_idle_frontend_is_immediate(make_service):
    async def scenario() -> None:
        frontend = AsyncFrontEnd(make_service())
        await frontend.start()
        try:
            started = time.monotonic()
            assert await frontend.drain(grace_s=5.0) is True
            assert time.monotonic() - started < 1.0
        finally:
            await frontend.close()

    asyncio.run(scenario())
