"""Tests for the stdlib HTTP front end."""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.serving.http import (
    ServiceHandler,
    make_server,
    route_label,
    serve_in_thread,
)

from tests.serving.conftest import LOG_SQL, SERVE_SQL


@pytest.fixture
def server(make_service):
    service = make_service(batch_size=2)
    server = make_server(service, port=0)  # free port
    serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def _post(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post_with_headers(server, path, payload):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        headers = {name.lower(): value for name, value in response.getheaders()}
        return response.status, headers, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["epoch"] == 0
        assert payload["breaker"] == "closed"

    def test_metrics_is_prometheus_text(self, server, perf_on):
        _post(server, "/categorize", {"sql": SERVE_SQL})
        status, body = _get(server, "/metrics")
        assert status == 200
        assert "# TYPE" in body
        assert "repro_serve_requests_total" in body

    def test_categorize_roundtrip(self, server):
        status, payload = _post(
            server, "/categorize", {"sql": SERVE_SQL, "render": True}
        )
        assert status == 200
        assert payload["rung"] == "full"
        assert payload["row_count"] > 0
        assert payload["trace_id"].startswith("req-")
        assert "rendering" in payload

    def test_responses_carry_x_trace_id(self, server):
        _, headers, payload = _post_with_headers(
            server, "/categorize", {"sql": SERVE_SQL}
        )
        assert headers["x-trace-id"] == payload["trace_id"]
        _, headers, payload = _post_with_headers(
            server, "/categorize_batch", {"sqls": [SERVE_SQL, LOG_SQL]}
        )
        assert headers["x-trace-id"] == payload["trace_id"]
        # Batch statements share the header's root id.
        assert all(
            r["trace_id"].startswith(payload["trace_id"] + "#")
            for r in payload["results"]
        )
        _, headers, payload = _post_with_headers(server, "/record", {"sql": LOG_SQL})
        assert headers["x-trace-id"].startswith("req-")

    def test_categorize_with_trace(self, server):
        _, payload = _post(server, "/categorize", {"sql": SERVE_SQL, "trace": True})
        assert payload["decision_trace"]["trace_id"] == payload["trace_id"]
        assert payload["decision_trace"]["served_rung"] == "full"

    def test_record_roundtrip(self, server):
        status, payload = _post(server, "/record", {"sql": LOG_SQL})
        assert status == 200
        assert payload["status"] == "recorded"
        assert payload["recorded"] == 1
        _post(server, "/record", {"sql": LOG_SQL})
        status, body = _get(server, "/healthz")
        assert json.loads(body)["epoch"] == 1  # batch of 2 published


class TestErrorMapping:
    def test_bad_sql_is_400_with_reason(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/categorize", {"sql": "SELECT FROM WHERE"})
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "SqlError"
        assert payload["error"]["detail"]["reason"] == "sql"
        assert "position" in payload["error"]["message"]

    def test_missing_sql_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/categorize", {})
        assert excinfo.value.code == 400

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            _url(server, "/categorize"),
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/nope", {"sql": SERVE_SQL})
        assert excinfo.value.code == 404

    def test_degradation_is_not_an_error(self, server):
        status, payload = _post(
            server, "/categorize", {"sql": SERVE_SQL, "budget": "showtuples"}
        )
        assert status == 200
        assert payload["rung"] == "showtuples"
        assert payload["degraded"] is not None

    def test_malformed_content_length_is_400(self, server):
        # urllib always computes Content-Length itself, so speak raw HTTP:
        # a header the client mangled must map to 400 InvalidRequest, not
        # escape _read_json as a ValueError and surface as a 500.
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /categorize HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: banana\r\n"
                b"Connection: close\r\n"
                b"\r\n"
            )
            sock.settimeout(10)
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line, response
        assert b"500" not in status_line


class TestRouteLabels:
    def test_known_routes_pass_through(self):
        assert route_label("/categorize") == "/categorize"
        assert route_label("/healthz?verbose=1") == "/healthz"

    def test_unknown_paths_collapse_to_other(self):
        # Bounded label cardinality: probes cannot mint new series.
        assert route_label("/nope") == "other"
        assert route_label("/../../etc/passwd") == "other"

    def test_requests_counted_by_route_method_status(self, server, perf_on):
        _get(server, "/healthz")
        _post(server, "/categorize", {"sql": SERVE_SQL})
        with pytest.raises(urllib.error.HTTPError):
            _get(server, "/nope")
        counters = perf_on.counters
        assert counters["http.requests"] == 3  # legacy unlabeled series kept
        assert counters[
            "http.requests_by_route{method=GET,route=/healthz,status=200}"
        ] == 1
        assert counters[
            "http.requests_by_route{method=POST,route=/categorize,status=200}"
        ] == 1
        assert counters[
            "http.requests_by_route{method=GET,route=other,status=404}"
        ] == 1

    def test_labeled_series_exported_to_prometheus(self, server, perf_on):
        _get(server, "/healthz")
        _, body = _get(server, "/metrics")
        assert "repro_http_requests_by_route_total" in body
        assert 'route="/healthz"' in body


class TestClientDisconnects:
    def test_get_disconnect_is_swallowed_and_counted(
        self, server, perf_on, monkeypatch
    ):
        # GET routes through _reply_or_disconnect too: a scraper that hangs
        # up mid-/healthz must be counted, not raise out of the handler.
        def broken_reply(self, status, payload, extra=None):
            raise BrokenPipeError("scraper went away")

        monkeypatch.setattr(ServiceHandler, "_reply", broken_reply)
        with pytest.raises((urllib.error.URLError, ConnectionResetError)):
            _get(server, "/healthz")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if perf_on.counters.get("http.client_disconnects", 0) >= 1:
                break
            time.sleep(0.01)
        assert perf_on.counters.get("http.client_disconnects", 0) >= 1
        assert perf_on.counters.get("http.internal_errors", 0) == 0

    def test_disconnect_during_reply_is_counted_not_raised(
        self, server, perf_on, monkeypatch
    ):
        # Simulate the client vanishing exactly when the handler writes:
        # the handler thread must swallow the broken pipe and count it
        # instead of attempting a 500 on the same dead socket.
        def broken_reply(self, status, payload, extra=None):
            raise BrokenPipeError("client went away")

        monkeypatch.setattr(ServiceHandler, "_reply", broken_reply)
        # The client sees the dropped connection (RemoteDisconnected is a
        # ConnectionResetError subclass; urllib sometimes wraps it).
        with pytest.raises((urllib.error.URLError, ConnectionResetError)):
            _post(server, "/categorize", {"sql": SERVE_SQL})
        # The handler runs on its own thread; poll briefly for the count.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if perf_on.counters.get("http.client_disconnects", 0) >= 1:
                break
            time.sleep(0.01)
        assert perf_on.counters.get("http.client_disconnects", 0) >= 1
        assert perf_on.counters.get("http.internal_errors", 0) == 0

    def test_disconnect_on_error_path_is_swallowed(
        self, server, perf_on, monkeypatch
    ):
        # Error replies (400/503/500) go through _reply_or_disconnect: a
        # write failure there must not raise out of the handler thread.
        def broken_reply(self, status, payload, extra=None):
            raise ConnectionResetError("client went away")

        monkeypatch.setattr(ServiceHandler, "_reply", broken_reply)
        with pytest.raises((urllib.error.URLError, ConnectionResetError)):
            _post(server, "/categorize", {"sql": "SELECT FROM WHERE"})
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if perf_on.counters.get("http.client_disconnects", 0) >= 1:
                break
            time.sleep(0.01)
        assert perf_on.counters.get("http.client_disconnects", 0) >= 1
        # The 400 was still classified as an invalid request first.
        assert any(
            key.startswith("http.invalid_requests")
            for key in perf_on.counters
        )
