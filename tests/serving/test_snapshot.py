"""Tests for epoch-based statistics snapshots."""

import pytest

from repro.serving.errors import PublishError
from repro.serving.faults import FaultInjector
from repro.serving.snapshot import SnapshotStore


@pytest.fixture
def logged_queries(workload):
    """A few hundred parsed workload queries to ingest."""
    return list(workload)[:200]


class TestEpochLifecycle:
    def test_seed_is_epoch_zero(self, fresh_statistics):
        store = SnapshotStore(fresh_statistics)
        epoch = store.pin()
        assert epoch.number == 0
        assert epoch.query_count == fresh_statistics.total_queries
        assert epoch.statistics is fresh_statistics

    def test_batch_publish_advances_epoch(self, fresh_statistics, logged_queries):
        seed_n = fresh_statistics.total_queries
        store = SnapshotStore(fresh_statistics, batch_size=4)
        for query in logged_queries[:4]:
            store.record_query(query)
        assert store.epoch_number == 1
        assert store.pending_count == 0
        assert store.pin().statistics.total_queries == seed_n + 4

    def test_below_batch_stays_pending(self, fresh_statistics, logged_queries):
        store = SnapshotStore(fresh_statistics, batch_size=10)
        for query in logged_queries[:9]:
            store.record_query(query)
        assert store.epoch_number == 0
        assert store.pending_count == 9

    def test_flush_publishes_partial_batch(self, fresh_statistics, logged_queries):
        store = SnapshotStore(fresh_statistics, batch_size=100)
        for query in logged_queries[:3]:
            store.record_query(query)
        assert store.flush() is not None
        assert store.epoch_number == 1
        assert store.pending_count == 0

    def test_flush_with_nothing_pending_is_noop(self, fresh_statistics):
        store = SnapshotStore(fresh_statistics)
        assert store.flush() is None
        assert store.epoch_number == 0

    def test_epoch_numbers_monotone(self, fresh_statistics, logged_queries):
        store = SnapshotStore(fresh_statistics, batch_size=5)
        seen = [store.epoch_number]
        for query in logged_queries[:50]:
            store.record_query(query)
            seen.append(store.epoch_number)
        assert seen == sorted(seen)
        assert seen[-1] == 10


class TestImmutability:
    def test_pinned_epoch_unchanged_by_later_publishes(
        self, fresh_statistics, logged_queries
    ):
        store = SnapshotStore(fresh_statistics, batch_size=4)
        pinned = store.pin()
        n_before = pinned.statistics.total_queries
        for query in logged_queries[:20]:
            store.record_query(query)
        assert store.epoch_number == 5
        # The epoch pinned before ingestion is bit-for-bit what it was:
        # its statistics object never saw a record_query.
        assert pinned.number == 0
        assert pinned.statistics.total_queries == n_before
        assert pinned.statistics.total_queries == pinned.query_count

    def test_copy_is_independent_of_original(self, statistics, workload):
        clone = statistics.copy()
        clone.record_query(next(iter(workload)))
        assert clone.total_queries == statistics.total_queries + 1

    def test_generation_even_when_stable(self, fresh_statistics, logged_queries):
        store = SnapshotStore(fresh_statistics, batch_size=2)
        assert store.generation % 2 == 0
        for query in logged_queries[:10]:
            store.record_query(query)
        assert store.generation % 2 == 0


class TestPublishFailure:
    def test_failed_publish_loses_nothing(self, fresh_statistics, logged_queries):
        faults = FaultInjector()
        store = SnapshotStore(fresh_statistics, batch_size=3, faults=faults)
        faults.arm("snapshot.publish", fail=True)
        for query in logged_queries[:2]:
            store.record_query(query)
        with pytest.raises(PublishError):
            store.record_query(logged_queries[2])
        # Nothing published, nothing lost, store still consistent.
        assert store.epoch_number == 0
        assert store.pending_count == 3
        assert store.generation % 2 == 0
        # Disarm and retry: the exact same delta publishes cleanly.
        faults.disarm("snapshot.publish")
        store.publish_pending()
        assert store.epoch_number == 1
        assert store.pending_count == 0
        assert (
            store.pin().statistics.total_queries
            == store.pin().query_count
        )

    def test_bad_batch_size_rejected(self, fresh_statistics):
        with pytest.raises(ValueError, match="batch_size"):
            SnapshotStore(fresh_statistics, batch_size=0)
