"""Tests for retry, circuit breaking, and lossless load shedding."""

import pytest

from repro.serving.errors import IngestionStalled, PublishError
from repro.serving.faults import FaultInjector
from repro.serving.retry import CircuitBreaker, ResilientIngestor, RetryPolicy
from repro.serving.snapshot import SnapshotStore


class TestRetryPolicy:
    def test_success_first_try_no_sleep(self):
        slept = []
        policy = RetryPolicy(attempts=3, sleeper=slept.append)
        assert policy.call(lambda: 1.0) == 1.0
        assert slept == []

    def test_retries_transient_failure(self):
        slept = []
        outcomes = iter([PublishError("boom"), 0.5])

        def flaky():
            result = next(outcomes)
            if isinstance(result, Exception):
                raise result
            return result

        policy = RetryPolicy(attempts=3, sleeper=slept.append)
        assert policy.call(flaky) == 0.5
        assert len(slept) == 1

    def test_exhausted_reraises_last_error(self):
        slept = []
        policy = RetryPolicy(attempts=3, sleeper=slept.append)

        def always_fails():
            raise PublishError("still down")

        with pytest.raises(PublishError, match="still down"):
            policy.call(always_fails)
        assert len(slept) == 2  # attempts - 1 backoffs

    def test_non_publish_errors_not_retried(self):
        slept = []
        policy = RetryPolicy(attempts=5, sleeper=slept.append)

        def bug():
            raise ValueError("a bug, not a transient")

        with pytest.raises(ValueError):
            policy.call(bug)
        assert slept == []

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.01, max_delay_s=0.05, jitter=0.0, sleeper=lambda s: None
        )
        delays = [policy.delay_s(i) for i in range(5)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_is_seeded(self):
        def delays(seed):
            policy = RetryPolicy(jitter=0.5, seed=seed, sleeper=lambda s: None)
            return [policy.delay_s(i) for i in range(4)]

        assert delays(3) == delays(3)

    def test_bad_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=fake_clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allows()

    def test_opens_at_threshold(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=fake_clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows()

    def test_success_resets_failure_streak(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=fake_clock)
        breaker.record_failure()
        breaker.record_success(latency_s=0.001)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_reset_timeout(self, fake_clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=fake_clock
        )
        breaker.record_failure()
        assert not breaker.allows()
        fake_clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allows()  # one probe allowed

    def test_half_open_success_closes(self, fake_clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=fake_clock
        )
        breaker.record_failure()
        fake_clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success(latency_s=0.001)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self, fake_clock):
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0, clock=fake_clock
        )
        for _ in range(3):
            breaker.record_failure()
        fake_clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN

    def test_slow_success_counts_as_failure(self, fake_clock):
        breaker = CircuitBreaker(
            failure_threshold=1, slow_threshold_s=0.25, clock=fake_clock
        )
        breaker.record_success(latency_s=0.8)
        assert breaker.state == CircuitBreaker.OPEN


class TestResilientIngestor:
    @pytest.fixture
    def queries(self, workload):
        return list(workload)[:100]

    def _ingestor(self, statistics, fake_clock, faults, **kwargs):
        store = SnapshotStore(
            statistics, batch_size=2, clock=fake_clock, faults=faults
        )
        retry = RetryPolicy(attempts=2, sleeper=fake_clock.sleep)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=10.0, clock=fake_clock
        )
        return ResilientIngestor(store, retry=retry, breaker=breaker, **kwargs)

    def test_healthy_path_publishes_everything(
        self, fresh_statistics, fake_clock, queries
    ):
        seed_n = fresh_statistics.total_queries
        ingestor = self._ingestor(fresh_statistics, fake_clock, FaultInjector())
        for query in queries[:20]:
            ingestor.record_query(query)
        assert ingestor.conserved()
        assert ingestor.published == 20
        assert ingestor.store.pin().statistics.total_queries == seed_n + 20

    def test_publish_failures_trip_breaker_and_spill(
        self, fresh_statistics, fake_clock, queries
    ):
        faults = FaultInjector()
        ingestor = self._ingestor(fresh_statistics, fake_clock, faults)
        faults.arm("snapshot.publish", fail=True)
        # Second query triggers a publish that fails through all retries:
        # the breaker (threshold 1) opens; later queries spill.
        for query in queries[:6]:
            ingestor.record_query(query)
        assert ingestor.breaker.state == CircuitBreaker.OPEN
        assert ingestor.spilled == 4  # queries 3..6 shed
        assert ingestor.published == 0
        assert ingestor.conserved()

    def test_spill_replays_losslessly_when_breaker_closes(
        self, fresh_statistics, fake_clock, queries
    ):
        seed_n = fresh_statistics.total_queries
        faults = FaultInjector()
        ingestor = self._ingestor(fresh_statistics, fake_clock, faults)
        faults.arm("snapshot.publish", fail=True)
        for query in queries[:10]:
            ingestor.record_query(query)
        assert ingestor.breaker.state == CircuitBreaker.OPEN
        assert ingestor.conserved()

        # Outage over: publishes work again, breaker half-opens on timeout.
        faults.disarm("snapshot.publish")
        fake_clock.advance(10.0)
        for query in queries[10:12]:
            ingestor.record_query(query)
        ingestor.flush()
        assert ingestor.breaker.state == CircuitBreaker.CLOSED
        assert ingestor.conserved()
        assert ingestor.spilled == 0
        # Conservation end to end: every recorded query is in the epoch.
        assert ingestor.store.pin().statistics.total_queries == seed_n + 12
        assert ingestor.published == 12

    def test_full_spill_raises_ingestion_stalled(
        self, fresh_statistics, fake_clock, queries
    ):
        faults = FaultInjector()
        ingestor = self._ingestor(
            fresh_statistics, fake_clock, faults, spill_limit=3
        )
        faults.arm("snapshot.publish", fail=True)
        for query in queries[:5]:  # 2 pending + 3 spilled = at the limit
            ingestor.record_query(query)
        with pytest.raises(IngestionStalled) as excinfo:
            ingestor.record_query(queries[5])
        assert excinfo.value.spilled == 3
        # The refused query is not counted recorded; invariant holds.
        assert ingestor.recorded == 5
        assert ingestor.conserved()
