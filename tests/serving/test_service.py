"""Tests for the long-lived categorization service."""

import pytest

from repro.serving.degrade import RUNG_FULL, RUNG_SHOWTUPLES, RUNGS
from repro.serving.errors import InvalidRequest
from repro.serving.faults import FaultInjector

from tests.serving.conftest import LOG_SQL, SERVE_SQL


class TestRequestValidation:
    def test_bad_sql_maps_to_invalid_request(self, make_service):
        service = make_service()
        with pytest.raises(InvalidRequest) as excinfo:
            service.categorize("SELECT FROM WHERE")
        assert excinfo.value.reason == "sql"
        # The SqlError position/snippet survives into the message.
        assert "position" in str(excinfo.value)

    def test_unknown_table_rejected(self, make_service):
        service = make_service()
        with pytest.raises(InvalidRequest) as excinfo:
            service.categorize("SELECT * FROM Nonexistent")
        assert excinfo.value.reason == "table"

    def test_negative_deadline_rejected(self, make_service):
        service = make_service()
        with pytest.raises(InvalidRequest) as excinfo:
            service.categorize(SERVE_SQL, deadline_ms=-5)
        assert excinfo.value.reason == "deadline"

    def test_unknown_budget_rejected(self, make_service):
        service = make_service()
        with pytest.raises(InvalidRequest) as excinfo:
            service.categorize(SERVE_SQL, budget="mystery")
        assert excinfo.value.reason == "budget"

    def test_unknown_technique_rejected(self, make_service):
        with pytest.raises(ValueError, match="technique"):
            make_service(technique="psychic")

    def test_record_bad_sql_maps_to_invalid_request(self, make_service):
        service = make_service()
        with pytest.raises(InvalidRequest):
            service.record_query("INSERT INTO nope")


class TestServing:
    def test_full_rung_response(self, make_service):
        service = make_service()
        result = service.categorize(SERVE_SQL)
        assert result.rung == RUNG_FULL
        assert result.degraded is None
        assert result.tree is not None
        assert result.epoch == 0
        assert len(result.rows) > 0

    def test_trace_ids_unique_and_threaded(self, make_service):
        service = make_service()
        first = service.categorize(SERVE_SQL, collect_trace=True)
        second = service.categorize(LOG_SQL, collect_trace=True)
        assert first.trace_id != second.trace_id
        assert first.tree.decision_trace.trace_id == first.trace_id
        assert first.tree.decision_trace.served_rung == RUNG_FULL

    def test_showtuples_budget_skips_categorization(self, make_service):
        service = make_service()
        result = service.categorize(SERVE_SQL, budget="showtuples")
        assert result.rung == RUNG_SHOWTUPLES
        assert result.tree is None
        assert result.degraded.reason == "budget"
        assert len(result.rows) > 0  # the rows themselves still served

    def test_as_dict_is_json_ready(self, make_service):
        import json

        service = make_service()
        payload = service.categorize(SERVE_SQL).as_dict()
        json.dumps(payload)
        assert payload["rung"] == RUNG_FULL
        assert payload["row_count"] == len(service.categorize(SERVE_SQL).rows)


class TestResultCache:
    def test_second_request_is_a_hit(self, make_service):
        service = make_service()
        miss = service.categorize(SERVE_SQL)
        hit = service.categorize(SERVE_SQL)
        assert not miss.cached
        assert hit.cached
        assert hit.tree is miss.tree  # the exact tree, not a rebuild

    def test_key_is_normalized_sql(self, make_service):
        service = make_service()
        service.categorize(SERVE_SQL)
        # Different whitespace, same normalized query → still a hit.
        hit = service.categorize(
            "SELECT  *  FROM ListProperty  WHERE price <= 300000"
        )
        assert hit.cached

    def test_new_epoch_misses(self, make_service):
        service = make_service(batch_size=2)
        service.categorize(SERVE_SQL)
        for _ in range(2):
            service.record_query(LOG_SQL)
        assert service.epoch_number == 1
        result = service.categorize(SERVE_SQL)
        assert not result.cached  # old epoch's entry no longer keyed
        assert result.epoch == 1

    def test_ttl_expiry(self, make_service, fake_clock):
        service = make_service(cache_ttl_s=30.0, clock=fake_clock)
        service.categorize(SERVE_SQL)
        fake_clock.advance(31.0)
        assert not service.categorize(SERVE_SQL).cached

    def test_lru_eviction(self, make_service):
        service = make_service(cache_capacity=1)
        service.categorize(SERVE_SQL)
        service.categorize(LOG_SQL)  # evicts the first entry
        assert not service.categorize(SERVE_SQL).cached

    def test_injected_eviction(self, make_service):
        faults = FaultInjector()
        service = make_service(faults=faults)
        service.categorize(SERVE_SQL)
        faults.arm("service.cache", evict=True)
        assert not service.categorize(SERVE_SQL).cached
        assert faults.fired("service.cache") >= 1

    def test_zero_capacity_disables_caching(self, make_service):
        service = make_service(cache_capacity=0)
        service.categorize(SERVE_SQL)
        assert not service.categorize(SERVE_SQL).cached


class TestIngestion:
    def test_record_query_advances_epochs(self, make_service):
        service = make_service(batch_size=4)
        for _ in range(8):
            service.record_query(LOG_SQL)
        assert service.epoch_number == 2
        health = service.health()
        assert health["recorded"] == 8
        assert health["published"] == 8
        assert health["breaker"] == "closed"

    def test_flush_publishes_partial_batch(self, make_service):
        service = make_service(batch_size=100)
        service.record_query(LOG_SQL)
        service.flush()
        assert service.epoch_number == 1


class TestNeverRaisesUnderFaults:
    """The headline acceptance criterion: categorize never raises.

    Slow publishes, injected cache evictions, level delays, and a 5 ms
    deadline all at once — every response must still be a tree or an
    explicit SHOWTUPLES, with the rung observable.
    """

    def test_faulted_gauntlet(self, make_service, perf_on):
        from tests.serving.conftest import fault_rate

        rate = fault_rate() or 0.5  # CI's fault-injection job raises this
        faults = FaultInjector(seed=13)
        faults.arm("snapshot.publish", delay_s=0.002, fail=True, rate=rate)
        faults.arm("service.cache", evict=True, rate=rate)
        faults.arm("degrade.level", delay_s=0.004, rate=rate)
        service = make_service(faults=faults, batch_size=2)

        rungs = []
        for i in range(25):
            result = service.categorize(
                SERVE_SQL if i % 2 else LOG_SQL, deadline_ms=5.0
            )
            assert result.rung in RUNGS
            assert result.rows is not None
            rungs.append(result.rung)
            try:
                service.record_query(LOG_SQL)
            except Exception as exc:  # noqa: BLE001 - breaker may stall
                from repro.serving.errors import IngestionStalled

                assert isinstance(exc, IngestionStalled)

        # The rung actually served is visible in the labeled counters.
        counted = sum(
            count
            for key, count in perf_on.counters.items()
            if key.startswith("serve.rung{")
        )
        assert counted == len([r for r in rungs])
