"""Tests for deadlines and the degradation ladder."""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.serving.degrade import (
    RUNG_FULL,
    RUNG_SHOWTUPLES,
    RUNG_SINGLE_LEVEL,
    RUNG_TRUNCATED,
    Deadline,
    DegradationLadder,
)
from repro.serving.faults import FaultInjector


@pytest.fixture
def categorizer(statistics):
    return CostBasedCategorizer(statistics, PAPER_CONFIG)


class TestDeadline:
    def test_no_budget_never_expires(self, fake_clock):
        deadline = Deadline(None, clock=fake_clock)
        fake_clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining_s == float("inf")

    def test_expires_when_budget_spent(self, fake_clock):
        deadline = Deadline(50.0, clock=fake_clock)
        assert not deadline.expired
        fake_clock.advance(0.049)
        assert not deadline.expired
        fake_clock.advance(0.002)
        assert deadline.expired
        assert deadline.elapsed_s == pytest.approx(0.051)

    def test_negative_budget_rejected(self, fake_clock):
        with pytest.raises(ValueError, match="deadline"):
            Deadline(-1.0, clock=fake_clock)

    def test_zero_budget_starts_expired(self, fake_clock):
        assert Deadline(0.0, clock=fake_clock).expired


class TestLadder:
    def test_generous_deadline_serves_full(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        ladder = DegradationLadder()
        tree, rung, degraded = ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(None, fake_clock)
        )
        assert rung == RUNG_FULL
        assert degraded is None
        assert tree is not None and not tree.truncated
        assert tree.root.children

    def test_expired_deadline_serves_showtuples(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        ladder = DegradationLadder()
        tree, rung, degraded = ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(0.0, fake_clock)
        )
        assert rung == RUNG_SHOWTUPLES
        assert tree is None
        assert degraded is not None and degraded.reason == "deadline"

    def test_mid_build_stop_serves_truncated(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        faults = FaultInjector()
        # First between-levels checkpoint passes, second one fails: the
        # level-1 work already attached must be kept, not discarded.
        faults.arm("degrade.level", fail=True, every=2)
        ladder = DegradationLadder(faults=faults)
        tree, rung, degraded = ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(None, fake_clock)
        )
        assert faults.fired("degrade.level") == 1
        assert rung == RUNG_TRUNCATED
        assert tree is not None and tree.truncated
        assert tree.root.children  # the paid-for level survived

    def test_stop_before_first_level_serves_showtuples(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        faults = FaultInjector()
        faults.arm("degrade.level", fail=True)  # every checkpoint fails
        ladder = DegradationLadder(faults=faults)
        tree, rung, _ = ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(None, fake_clock)
        )
        assert rung == RUNG_SHOWTUPLES
        assert tree is None

    def test_injected_level_fault_never_escapes(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        faults = FaultInjector()
        faults.arm("degrade.level", fail=True)
        ladder = DegradationLadder(faults=faults)
        # Must not raise InjectedFault — degradation, not propagation.
        ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(None, fake_clock)
        )

    def test_tight_budget_skips_to_single_level(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        # The EWMA estimate says one level costs 10 s; 100 ms remain.
        ladder = DegradationLadder(level_cost_hint_s=10.0)
        tree, rung, degraded = ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(100.0, fake_clock)
        )
        assert rung == RUNG_SINGLE_LEVEL
        assert degraded is not None and degraded.reason == "deadline"
        assert tree is not None
        depths = {node.level for node in tree.nodes()}
        assert max(depths) == 1  # exactly one attribute level

    def test_budget_rung_caps_the_ladder(
        self, categorizer, seattle_rows, seattle_query, fake_clock
    ):
        ladder = DegradationLadder()
        tree, rung, degraded = ladder.categorize(
            categorizer,
            seattle_rows,
            seattle_query,
            Deadline(None, fake_clock),
            max_rung=RUNG_SINGLE_LEVEL,
        )
        assert rung == RUNG_SINGLE_LEVEL
        assert degraded is not None and degraded.reason == "budget"

        tree, rung, _ = ladder.categorize(
            categorizer,
            seattle_rows,
            seattle_query,
            Deadline(None, fake_clock),
            max_rung=RUNG_SHOWTUPLES,
        )
        assert rung == RUNG_SHOWTUPLES and tree is None

    def test_full_build_feeds_level_cost_estimate(
        self, categorizer, seattle_rows, seattle_query
    ):
        ladder = DegradationLadder()
        assert ladder.level_cost_s == 0.0
        ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(None)
        )
        assert ladder.level_cost_s > 0.0


class TestObservability:
    def test_served_rung_counted_and_traced(
        self, categorizer, seattle_rows, seattle_query, fake_clock, perf_on
    ):
        ladder = DegradationLadder()
        tree, rung, _ = ladder.categorize(
            categorizer,
            seattle_rows,
            seattle_query,
            Deadline(None, fake_clock),
            collect_trace=True,
        )
        assert rung == RUNG_FULL
        assert perf_on.counters["serve.rung{rung=full}"] == 1
        assert tree.decision_trace.served_rung == RUNG_FULL
        assert tree.decision_trace.as_dict()["served_rung"] == RUNG_FULL

    def test_degraded_rung_counted(
        self, categorizer, seattle_rows, seattle_query, fake_clock, perf_on
    ):
        ladder = DegradationLadder()
        ladder.categorize(
            categorizer, seattle_rows, seattle_query, Deadline(0.0, fake_clock)
        )
        assert perf_on.counters["serve.rung{rung=showtuples}"] == 1
