"""Tests for the batch categorization API (service + HTTP front end)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serving.degrade import (
    RUNG_FULL,
    RUNG_SHOWTUPLES,
    RUNGS,
)
from repro.serving.errors import InvalidRequest
from repro.serving.http import make_server, serve_in_thread

from tests.serving.conftest import LOG_SQL, SERVE_SQL

THIRD_SQL = "SELECT * FROM ListProperty WHERE bathcount >= 2"
BATCH = [SERVE_SQL, LOG_SQL, THIRD_SQL]


class TestCategorizeMany:
    def test_order_preserved(self, make_service):
        service = make_service()
        results = service.categorize_many(BATCH)
        assert len(results) == 3
        normalized = [service._parse(sql)[1] for sql in BATCH]
        assert [r.sql for r in results] == normalized

    def test_whole_batch_shares_one_epoch(self, make_service):
        service = make_service(batch_size=2)
        # Advance the epoch first so the pinned number is non-trivial.
        service.record_query(LOG_SQL)
        service.record_query(SERVE_SQL)
        results = service.categorize_many(BATCH)
        assert {r.epoch for r in results} == {1}

    def test_empty_batch_rejected(self, make_service):
        with pytest.raises(InvalidRequest, match="at least one"):
            make_service().categorize_many([])

    def test_bad_statement_fails_whole_batch_up_front(self, make_service, perf_on):
        service = make_service()
        with pytest.raises(InvalidRequest, match="batch statement 1"):
            service.categorize_many([SERVE_SQL, "SELECT FROM WHERE", LOG_SQL])
        # Validation happens before any serving work: nothing was cached
        # and no per-request spans ran.
        assert len(service.cache) == 0
        from repro import perf

        counters = dict(perf.get().counters)
        assert "serve.rung{rung=full}" not in counters

    def test_duplicate_statements_hit_cache_within_batch(self, make_service):
        service = make_service()
        first, second = service.categorize_many([SERVE_SQL, SERVE_SQL])
        assert not first.cached
        assert second.cached
        assert second.tree is first.tree

    def test_second_batch_served_from_cache(self, make_service):
        service = make_service()
        service.categorize_many(BATCH)
        again = service.categorize_many(BATCH)
        assert all(r.cached for r in again)

    def test_budget_caps_every_statement(self, make_service):
        results = make_service().categorize_many(BATCH, budget=RUNG_SHOWTUPLES)
        assert [r.rung for r in results] == [RUNG_SHOWTUPLES] * 3
        assert all(r.tree is None and len(r.rows) > 0 for r in results)

    def test_shared_deadline_never_raises(self, make_service):
        # A tiny budget for the WHOLE batch: later statements inherit an
        # exhausted deadline and degrade (bottoming at SHOWTUPLES) rather
        # than erroring.
        results = make_service().categorize_many(BATCH, deadline_ms=1.0)
        assert [r.rung in RUNGS for r in results] == [True] * 3
        assert results[-1].rung == RUNG_SHOWTUPLES

    def test_invalid_deadline_rejected(self, make_service):
        with pytest.raises(InvalidRequest):
            make_service().categorize_many(BATCH, deadline_ms=-1)

    def test_invalid_budget_rejected(self, make_service):
        with pytest.raises(InvalidRequest):
            make_service().categorize_many(BATCH, budget="platinum")

    def test_batch_counters(self, make_service, perf_on):
        from repro import perf

        make_service().categorize_many(BATCH)
        counters = dict(perf.get().counters)
        assert counters.get("serve.batch_requests") == 1
        assert counters.get("serve.requests") == 3

    def test_traces_are_per_statement(self, make_service):
        results = make_service().categorize_many(
            [SERVE_SQL, LOG_SQL], collect_trace=True
        )
        trace_ids = {r.trace_id for r in results}
        assert len(trace_ids) == 2
        for result in results:
            if result.tree is not None and result.tree.decision_trace is not None:
                assert result.tree.decision_trace.trace_id == result.trace_id


class TestCacheKeyBackendTag:
    def test_cache_keys_carry_backend_name(self, make_service):
        service = make_service()
        service.categorize(SERVE_SQL)
        (key,) = service.cache._entries.keys()
        namespace, epoch, technique, backend, sql = key.split(":", 4)
        assert namespace == service.namespace
        assert backend == service.table.backend_name == "rows"
        assert technique == service.technique
        assert epoch == "0"

    def test_columnar_service_keys_differ(self, statistics):
        from repro.data.homes import generate_homes
        from repro.serving.relation import Relation
        from repro.serving.service import CategorizationService

        table = generate_homes(rows=500, seed=7, backend="columnar")
        service = CategorizationService(Relation(table, statistics.copy()))
        service.categorize(SERVE_SQL)
        (key,) = service.cache._entries.keys()
        assert ":columnar:" in key


@pytest.fixture
def server(make_service):
    service = make_service(batch_size=2)
    server = make_server(service, port=0)
    serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()


def _post(server, path, payload):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHttpBatchEndpoint:
    def test_roundtrip(self, server):
        status, payload = _post(server, "/categorize_batch", {"sqls": BATCH})
        assert status == 200
        assert payload["count"] == 3
        assert len(payload["results"]) == 3
        assert payload["epoch"] == payload["results"][0]["epoch"]
        for body in payload["results"]:
            assert body["rung"] in RUNGS
            assert body["row_count"] > 0

    def test_render_flag_applies_to_all(self, server):
        _, payload = _post(
            server, "/categorize_batch", {"sqls": [SERVE_SQL], "render": True}
        )
        (body,) = payload["results"]
        if body["rung"] == RUNG_FULL:
            assert "rendering" in body

    def test_missing_sqls_is_400(self, server):
        for bad in ({}, {"sqls": []}, {"sqls": ["", SERVE_SQL]}, {"sqls": "x"}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server, "/categorize_batch", bad)
            assert excinfo.value.code == 400

    def test_bad_statement_is_400_naming_position(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                server,
                "/categorize_batch",
                {"sqls": [SERVE_SQL, "SELECT FROM WHERE"]},
            )
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "SqlError"
        assert "batch statement 1" in body["error"]["message"]
