"""Tests for the deterministic fault injector."""

import pytest

from repro.serving.errors import PublishError
from repro.serving.faults import FaultInjector, InjectedFault


class TestFiring:
    def test_unarmed_site_is_a_noop(self):
        injector = FaultInjector()
        assert injector.fire("snapshot.publish") is False
        assert injector.hits("snapshot.publish") == 0
        assert injector.fired("snapshot.publish") == 0

    def test_armed_fail_raises_with_site(self):
        injector = FaultInjector()
        injector.arm("snapshot.publish", fail=True)
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("snapshot.publish")
        assert excinfo.value.site == "snapshot.publish"
        assert injector.fired("snapshot.publish") == 1

    def test_injected_fault_is_a_publish_error(self):
        # The retry/breaker machinery must treat injected publish failures
        # exactly like real transient ones.
        assert issubclass(InjectedFault, PublishError)

    def test_evict_directive_returned_to_call_site(self):
        injector = FaultInjector()
        injector.arm("service.cache", evict=True)
        assert injector.fire("service.cache") is True

    def test_delay_goes_through_sleeper(self):
        slept = []
        injector = FaultInjector(sleeper=slept.append)
        injector.arm("degrade.level", delay_s=0.25)
        injector.fire("degrade.level")
        assert slept == [0.25]


class TestDeterminism:
    def test_every_nth_fires_deterministically(self):
        injector = FaultInjector()
        injector.arm("ingest.record", every=3, evict=True)
        pattern = [injector.fire("ingest.record") for _ in range(9)]
        assert pattern == [False, False, True] * 3

    def test_rate_zero_never_fires(self):
        injector = FaultInjector()
        injector.arm("ingest.record", rate=0.0, evict=True)
        assert not any(injector.fire("ingest.record") for _ in range(50))
        assert injector.hits("ingest.record") == 50

    def test_same_seed_same_pattern(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.arm("x", rate=0.5, evict=True)
            return [injector.fire("x") for _ in range(40)]

        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)  # and the seed actually matters

    def test_limit_stops_firing(self):
        injector = FaultInjector()
        injector.arm("x", evict=True, limit=2)
        fired = [injector.fire("x") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.fired("x") == 2


class TestArming:
    def test_disarm_one_site(self):
        injector = FaultInjector()
        injector.arm("a", fail=True)
        injector.arm("b", fail=True)
        injector.disarm("a")
        assert injector.fire("a") is False
        with pytest.raises(InjectedFault):
            injector.fire("b")

    def test_disarm_all(self):
        injector = FaultInjector()
        injector.arm("a", fail=True)
        injector.arm("b", fail=True)
        injector.disarm()
        assert injector.fire("a") is False
        assert injector.fire("b") is False

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector().arm("a", rate=1.5)

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            FaultInjector().arm("a", every=0)

    def test_rearming_replaces_spec(self):
        injector = FaultInjector()
        injector.arm("a", fail=True)
        injector.arm("a", evict=True)
        assert injector.fire("a") is True  # no raise: the new spec won
