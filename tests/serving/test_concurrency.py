"""Threaded tests: concurrent ingestion vs. categorization reads.

The epoch-snapshot contract under real threads:

* a reader pinning an epoch sees statistics that never change — the
  eagerly recorded ``query_count`` always matches the live
  ``total_queries`` of the pinned statistics (a torn read would break
  this the moment ingestion mutated a published epoch);
* epoch numbers observed by any single thread are monotone;
* with ≥1000 ``record_query`` calls racing the readers, every query is
  conserved (published + pending + spilled == recorded), including
  through a forced breaker open → spill → replay cycle.
"""

from __future__ import annotations

import threading

from repro.serving.faults import FaultInjector
from repro.serving.retry import CircuitBreaker, ResilientIngestor, RetryPolicy
from repro.serving.snapshot import SnapshotStore

from tests.serving.conftest import LOG_SQL, SERVE_SQL

N_RECORDS = 1200
N_READERS = 4


class TestSnapshotStoreUnderThreads:
    def test_no_torn_reads_and_monotone_epochs(self, fresh_statistics, workload):
        queries = list(workload)[:N_RECORDS]
        seed_n = fresh_statistics.total_queries
        store = SnapshotStore(fresh_statistics, batch_size=16)
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            for query in queries:
                store.record_query(query)
            stop.set()

        def reader():
            last_epoch = -1
            while not stop.is_set():
                epoch = store.pin()
                if epoch.number < last_epoch:
                    failures.append(
                        f"epoch went backwards: {last_epoch} -> {epoch.number}"
                    )
                    return
                last_epoch = epoch.number
                # Torn-read check: query_count was recorded at publish
                # time; if ingestion ever mutated a published epoch, the
                # live total would drift away from it.
                live = epoch.statistics.total_queries
                if live != epoch.query_count:
                    failures.append(
                        f"torn read in epoch {epoch.number}: "
                        f"{live} != {epoch.query_count}"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[0]
        assert store.generation % 2 == 0
        store.flush()
        assert store.pin().statistics.total_queries == seed_n + N_RECORDS
        assert store.epoch_number >= N_RECORDS // 16


class TestServiceUnderThreads:
    def test_categorize_races_ingestion(self, make_service):
        service = make_service(batch_size=32)
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            for _ in range(N_RECORDS):
                service.record_query(LOG_SQL)
            stop.set()

        def reader(sql: str):
            last_epoch = -1
            while not stop.is_set():
                result = service.categorize(sql)
                if result.rung not in ("full", "truncated", "single_level",
                                       "showtuples"):
                    failures.append(f"bad rung {result.rung}")
                    return
                if result.epoch < last_epoch:
                    failures.append(
                        f"served epoch went backwards: "
                        f"{last_epoch} -> {result.epoch}"
                    )
                    return
                last_epoch = result.epoch

        threads = [
            threading.Thread(target=reader, args=(sql,))
            for sql in (SERVE_SQL, LOG_SQL)
        ]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[0]
        service.flush()
        health = service.health()
        assert health["recorded"] == N_RECORDS
        assert health["published"] == N_RECORDS
        assert health["spilled"] == 0


class TestBreakerCycleUnderThreads:
    def test_open_spill_replay_conserves_counts(
        self, fresh_statistics, workload, fake_clock
    ):
        queries = list(workload)[:N_RECORDS]
        seed_n = fresh_statistics.total_queries
        faults = FaultInjector(seed=3)
        store = SnapshotStore(fresh_statistics, batch_size=16, faults=faults)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=0.5, clock=fake_clock
        )
        ingestor = ResilientIngestor(
            store,
            retry=RetryPolicy(attempts=2, sleeper=lambda s: None),
            breaker=breaker,
            spill_limit=N_RECORDS,
        )

        # Phase 1: publishes fail → breaker opens, everything sheds.
        faults.arm("snapshot.publish", fail=True)
        for query in queries[:400]:
            ingestor.record_query(query)
        assert breaker.state == CircuitBreaker.OPEN
        assert ingestor.spilled > 0
        assert ingestor.conserved()

        # Phase 2: outage ends, breaker half-opens; concurrent writers
        # replay the spill and drain the rest without losing a query.
        faults.disarm("snapshot.publish")
        fake_clock.advance(1.0)
        remaining = queries[400:]
        chunk = len(remaining) // N_READERS
        lock_failures: list[str] = []

        def writer(part):
            try:
                for query in part:
                    ingestor.record_query(query)
            except Exception as exc:  # noqa: BLE001
                lock_failures.append(repr(exc))

        threads = [
            threading.Thread(
                target=writer,
                args=(remaining[i * chunk : (i + 1) * chunk
                                if i < N_READERS - 1 else len(remaining)],)
            )
            for i in range(N_READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not lock_failures, lock_failures[0]
        ingestor.flush()
        assert ingestor.conserved()
        assert ingestor.spilled == 0
        assert ingestor.recorded == N_RECORDS
        assert ingestor.published == N_RECORDS
        # Query count conserved end to end in the final epoch.
        assert store.pin().statistics.total_queries == seed_n + N_RECORDS
        assert breaker.state == CircuitBreaker.CLOSED
