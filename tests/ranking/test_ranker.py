"""Tests for ranking integration with row sets and trees."""

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.explore.exploration import replay_all, replay_one
from repro.ranking.qf import QueryFrequencyScorer
from repro.ranking.ranker import rank_rowset, rank_tree
from repro.workload.model import WorkloadQuery


class ScoreByPrice:
    """Toy scorer: more expensive first."""

    def tuple_score(self, row):
        return float(row["price"] or 0)


@pytest.fixture
def rows(homes_table):
    from repro.relational.expressions import InPredicate

    return homes_table.select(
        InPredicate("neighborhood", ["Queen Anne, WA", "Ballard, WA"])
    )


class TestRankRowset:
    def test_descending_order(self, rows):
        ranked = rank_rowset(rows, ScoreByPrice())
        prices = ranked.values("price")
        assert prices == sorted(prices, reverse=True)

    def test_same_tuples(self, rows):
        ranked = rank_rowset(rows, ScoreByPrice())
        assert set(ranked.indices) == set(rows.indices)

    def test_stable_on_ties(self, rows):
        class Constant:
            def tuple_score(self, row):
                return 0.0

        ranked = rank_rowset(rows, Constant())
        assert ranked.indices == rows.indices


class TestRankTree:
    @pytest.fixture
    def tree(self, rows, statistics, seattle_query):
        return CostBasedCategorizer(statistics).categorize(rows, seattle_query)

    def test_every_node_reordered_consistently(self, tree, statistics):
        scorer = QueryFrequencyScorer(statistics)
        ranked = rank_tree(tree, scorer)
        assert ranked is tree
        ranked.validate()
        for node in ranked.nodes():
            scores = [scorer.tuple_score(row) for row in node.rows]
            assert scores == sorted(scores, reverse=True)

    def test_structure_untouched(self, rows, statistics, seattle_query):
        original = CostBasedCategorizer(statistics).categorize(rows, seattle_query)
        before = [(n.display(), n.tuple_count) for n in original.nodes()]
        rank_tree(original, QueryFrequencyScorer(statistics))
        after = [(n.display(), n.tuple_count) for n in original.nodes()]
        assert before == after

    def test_all_scenario_cost_unchanged(self, rows, statistics, seattle_query):
        """Ranking reorders scans; the ALL scenario reads everything anyway."""
        w = WorkloadQuery.from_sql(
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Ballard, WA') "
            "AND price BETWEEN 200000 AND 400000"
        )
        tree = CostBasedCategorizer(statistics).categorize(rows, seattle_query)
        before = replay_all(tree, w).items_examined
        rank_tree(tree, QueryFrequencyScorer(statistics))
        after = replay_all(tree, w).items_examined
        assert before == after

    def test_one_scenario_improves_on_average(self, rows, statistics, seattle_query, workload):
        """Ranked tuple order should shorten first-relevant scans on average."""
        tree = CostBasedCategorizer(statistics).categorize(rows, seattle_query)
        explorations = [
            w for w in workload.sample(400, seed=13)
            if w.in_values("neighborhood")
            and w.in_values("neighborhood") <= {"Queen Anne, WA", "Ballard, WA"}
        ][:20]
        assert explorations
        before = sum(replay_one(tree, w).items_examined for w in explorations)
        rank_tree(tree, QueryFrequencyScorer(statistics))
        after = sum(replay_one(tree, w).items_examined for w in explorations)
        assert after <= before * 1.1
