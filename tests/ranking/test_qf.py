"""Tests for query-frequency tuple scoring."""

import math

import pytest

from repro.data.homes import list_property_schema
from repro.ranking.qf import QueryFrequencyScorer
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture
def scorer():
    workload = Workload.from_sql_strings(
        [
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Hot, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Hot, WA')",
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Hot, WA', 'Warm, WA')",
            "SELECT * FROM ListProperty WHERE price BETWEEN 200000 AND 300000",
            "SELECT * FROM ListProperty WHERE price BETWEEN 250000 AND 400000",
        ]
    )
    stats = preprocess_workload(workload, list_property_schema(), {"price": 5_000})
    return QueryFrequencyScorer(stats)


class TestValueScores:
    def test_most_requested_value_scores_highest(self, scorer):
        hot = scorer.value_score("neighborhood", "Hot, WA")
        warm = scorer.value_score("neighborhood", "Warm, WA")
        cold = scorer.value_score("neighborhood", "Cold, WA")
        assert hot > warm > cold
        assert hot == pytest.approx(1.0)

    def test_unseen_value_gets_smoothing_floor(self, scorer):
        assert scorer.value_score("neighborhood", "Cold, WA") == pytest.approx(
            1e-3
        )

    def test_numeric_score_is_containment_fraction(self, scorer):
        # 275K is inside both price ranges; 150K inside none; 350K in one.
        assert scorer.value_score("price", 275_000) == pytest.approx(1.0)
        assert scorer.value_score("price", 350_000) == pytest.approx(0.5 + 1e-3)
        assert scorer.value_score("price", 150_000) == pytest.approx(1e-3)

    def test_null_is_neutral(self, scorer):
        assert scorer.value_score("price", None) == 1.0

    def test_unused_attribute_is_neutral(self, scorer):
        assert scorer.value_score("yearbuilt", 1990) == 1.0

    def test_unknown_attribute_rejected_at_construction(self, scorer):
        with pytest.raises(KeyError):
            QueryFrequencyScorer(scorer.statistics, attributes=["bogus"])


class TestTupleScores:
    def test_popular_tuple_outscores_unpopular(self, scorer):
        popular = {"neighborhood": "Hot, WA", "price": 275_000}
        unpopular = {"neighborhood": "Cold, WA", "price": 150_000}
        assert scorer.tuple_score(popular) > scorer.tuple_score(unpopular)

    def test_scores_are_finite(self, scorer):
        worst = {"neighborhood": "Cold, WA", "price": 1}
        assert math.isfinite(scorer.tuple_score(worst))

    def test_default_attributes_are_used_ones(self, scorer):
        assert set(scorer.attributes) == {"neighborhood", "price"}

    def test_custom_attribute_subset(self, scorer):
        only_price = QueryFrequencyScorer(scorer.statistics, attributes=["price"])
        a = {"neighborhood": "Hot, WA", "price": 150_000}
        b = {"neighborhood": "Cold, WA", "price": 150_000}
        assert only_price.tuple_score(a) == only_price.tuple_score(b)
