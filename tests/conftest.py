"""Shared fixtures: a small synthetic dataset, workload, and count tables.

Session-scoped because generation and preprocessing dominate test runtime;
every fixture is deterministic (fixed seeds), so sharing cannot leak state
between tests — tables and statistics are treated as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.config import PAPER_CONFIG
from repro.data.homes import generate_homes
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.preprocess import preprocess_workload


@pytest.fixture(scope="session")
def homes_table():
    """A 4000-row synthetic ListProperty table (seed 7)."""
    return generate_homes(rows=4_000, seed=7)


@pytest.fixture(scope="session")
def workload():
    """A 3000-query synthetic workload (seed 41)."""
    return generate_workload(WorkloadGeneratorConfig(query_count=3_000, seed=41))


@pytest.fixture(scope="session")
def statistics(homes_table, workload):
    """Count tables built from the shared workload for the shared schema."""
    return preprocess_workload(
        workload, homes_table.schema, PAPER_CONFIG.separation_intervals
    )


@pytest.fixture(scope="session")
def seattle_query():
    """A broad Seattle/Bellevue query whose result is worth categorizing."""
    from repro.data.geography import SEATTLE_BELLEVUE
    from repro.relational.expressions import InPredicate
    from repro.relational.query import SelectQuery

    return SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )


@pytest.fixture(scope="session")
def seattle_rows(homes_table, seattle_query):
    """The result set of the Seattle query over the shared table."""
    return seattle_query.execute(homes_table)
