"""Simulate a user session: drill-down, SHOWTUPLES/SHOWCAT, give-up.

Walks a simulated buyer (hidden preference + finite patience) through the
cost-based and No-Cost trees for the same task and prints the operation
log — the expand/ignore/show-tuples trace the paper's user study recorded
(Section 6.3) — plus the resulting measurements.

Run:  python examples/interactive_exploration.py
"""

import random

from repro import (
    CostBasedCategorizer,
    NoCostCategorizer,
    PAPER_CONFIG,
    build_paper_scale_workload,
    generate_homes,
    preprocess_workload,
)
from repro.explore import SimulatedUser, UserBehavior, derive_preference
from repro.explore.session import Operation
from repro.study.userstudy import paper_tasks


def describe(session, user, tree) -> None:
    print(f"  items examined:  {session.items_examined:.0f} "
          f"({session.labels_examined} labels + {session.tuples_examined} tuples)")
    print(f"  relevant found:  {session.relevant_found} "
          f"of {user.relevant_in(tree)} in the result set")
    print(f"  gave up:         {session.exhausted_patience}")
    interesting = [
        event for event in session.events
        if event.operation in (Operation.EXPAND, Operation.SHOW_TUPLES, Operation.IGNORE)
    ]
    print("  first operations:")
    for event in interesting[:10]:
        print(f"    {event.operation.value:12s} {event.target}")
    if len(interesting) > 10:
        print(f"    ... {len(interesting) - 10} more operations")


def main() -> None:
    homes = generate_homes(rows=20_000, seed=7)
    workload = build_paper_scale_workload(seed=41, query_count=8_000)
    statistics = preprocess_workload(
        workload, homes.schema, PAPER_CONFIG.separation_intervals
    )

    task = paper_tasks()[3]  # Seattle/Bellevue, 200-400K, 3-4 bedrooms
    rows = task.execute(homes)
    print(f"task: {task}")
    print(f"result set: {len(rows)} homes\n")

    preference = derive_preference(task, random.Random(12))
    print(f"subject's hidden preference: {preference}\n")
    user = SimulatedUser(
        "U1",
        preference,
        UserBehavior(sensitivity=0.9, label_error=0.05, recognition=0.95, patience=800),
        seed=12,
    )

    for categorizer in (CostBasedCategorizer(statistics), NoCostCategorizer(statistics)):
        tree = categorizer.categorize(rows, task)
        print(f"=== exploring the {tree.technique} tree "
              f"({tree.category_count()} categories) ===")
        session = user.explore_all(tree)
        describe(session, user, tree)
        print()


if __name__ == "__main__":
    main()
