"""Compare the three categorization techniques on one broad query.

Builds the Cost-Based, Attr-Cost and No-Cost trees (Section 6.1) for the
same result set, prints each tree's top levels side by side, and replays a
set of held-out searches against all three to measure the actual number of
items a user would examine — the Figure 8 comparison in miniature.

Run:  python examples/compare_techniques.py
"""

from repro import (
    AttrCostCategorizer,
    CostBasedCategorizer,
    CostModel,
    NoCostCategorizer,
    PAPER_CONFIG,
    ProbabilityEstimator,
    build_paper_scale_workload,
    generate_homes,
    preprocess_workload,
    render_tree,
)
from repro.data.geography import BAY_AREA
from repro.explore import replay_all
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery


def main() -> None:
    homes = generate_homes(rows=20_000, seed=7)
    workload = build_paper_scale_workload(seed=41, query_count=8_000)
    statistics = preprocess_workload(
        workload, homes.schema, PAPER_CONFIG.separation_intervals
    )

    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", BAY_AREA.neighborhood_names()),
    )
    rows = query.execute(homes)
    print(f"result set: {len(rows)} Bay Area homes\n")

    model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
    techniques = [
        CostBasedCategorizer(statistics),
        AttrCostCategorizer(statistics),
        NoCostCategorizer(statistics),
    ]

    # Held-out Bay Area searches to replay as synthetic explorations.
    explorations = [
        w
        for w in workload.sample(2_000, seed=9)
        if w.in_values("neighborhood")
        and w.in_values("neighborhood") <= set(BAY_AREA.neighborhood_names())
        and len(w.conditions) >= 2
    ][:30]
    print(f"replaying {len(explorations)} held-out searches per technique\n")

    for categorizer in techniques:
        tree = categorizer.categorize(rows, query)
        estimated = model.tree_cost_all(tree)
        actual = sum(
            replay_all(tree, w).items_examined for w in explorations
        ) / len(explorations)
        print(f"=== {tree.technique} ===")
        print(f"levels: {tree.level_attributes()}")
        print(f"categories: {tree.category_count()}, depth: {tree.depth()}")
        print(f"estimated CostAll: {estimated:8.1f}")
        print(f"avg actual cost:   {actual:8.1f}  "
              f"({actual / len(rows):.1%} of the result set)")
        print(render_tree(tree, max_depth=1, max_children=5))
        print()


if __name__ == "__main__":
    main()
