"""Star-schema workflow: normalized tables to categorized wide results.

Footnote 6 of the paper assumes queries target "the wide table obtained
by joining the fact table with the dimension tables".  This example walks
the full deployment pipeline on normalized data:

1. normalize the flat ListProperty relation into Listing (fact) and
   Location (dimension),
2. materialize the wide table via a star join,
3. run a search against the wide table and categorize it.

Run:  python examples/star_schema.py
"""

from repro import (
    CostBasedCategorizer,
    PAPER_CONFIG,
    build_paper_scale_workload,
    generate_homes,
    preprocess_workload,
    render_tree,
)
from repro.data.geography import CHICAGO
from repro.data.star import normalize_homes, widen_star
from repro.relational.expressions import Conjunction, InPredicate, RangePredicate
from repro.relational.query import SelectQuery


def main() -> None:
    flat = generate_homes(rows=15_000, seed=7)
    fact, location = normalize_homes(flat)
    print(f"normalized: {len(fact)} Listing facts, {len(location)} Location rows")

    wide = widen_star(fact, location)
    print(f"star join produced {len(wide)} wide tuples "
          f"({len(wide.schema)} attributes)\n")

    workload = build_paper_scale_workload(seed=41, query_count=6_000)
    statistics = preprocess_workload(
        workload, wide.schema, PAPER_CONFIG.separation_intervals
    )

    query = SelectQuery(
        "ListProperty",
        Conjunction(
            [
                InPredicate("neighborhood", CHICAGO.neighborhood_names()),
                RangePredicate("price", 150_000, 450_000),
            ]
        ),
    )
    rows = query.execute(wide)
    print(f"query over the wide table returned {len(rows)} homes\n")

    tree = CostBasedCategorizer(statistics, PAPER_CONFIG).categorize(rows, query)
    print(render_tree(tree, max_depth=2, max_children=4))


if __name__ == "__main__":
    main()
