"""Domain independence: categorize a movie catalog.

The paper's approach is "domain-independent" — nothing in the categorizer
knows about homes.  This example runs the identical pipeline on a movie
catalog: its own schema (genres, ratings, years), its own search-log
personas, its own separation intervals — and gets a sensible browse tree.

Run:  python examples/movies.py
"""

from repro import (
    CostBasedCategorizer,
    CostModel,
    ProbabilityEstimator,
    preprocess_workload,
    render_tree,
)
from repro.core.config import CategorizerConfig
from repro.data.movies import (
    MOVIE_SEPARATION_INTERVALS,
    generate_movie_workload,
    generate_movies,
)
from repro.relational.expressions import RangePredicate
from repro.relational.query import SelectQuery


def main() -> None:
    movies = generate_movies(rows=15_000, seed=3)
    workload = generate_movie_workload(queries=6_000, seed=5)
    config = CategorizerConfig(separation_intervals=MOVIE_SEPARATION_INTERVALS)
    statistics = preprocess_workload(
        workload, movies.schema, MOVIE_SEPARATION_INTERVALS
    )

    print("what movie searchers care about (NAttr/N):")
    for name in movies.schema.names():
        print(f"  {name:12s} {statistics.usage_fraction(name):.2f}")

    query = SelectQuery("Movies", RangePredicate("rating", 7.0, 10.0))
    rows = query.execute(movies)
    print(f"\n'well-rated movies' query returned {len(rows)} titles\n")

    tree = CostBasedCategorizer(statistics, config).categorize(rows, query)
    print(render_tree(tree, max_depth=2, max_children=5))

    model = CostModel(ProbabilityEstimator(statistics), config)
    print(f"\nestimated exploration cost: {model.tree_cost_all(tree):.0f} "
          f"items vs {len(rows)} for a full scan "
          f"({len(rows) / model.tree_cost_all(tree):.1f}x saving)")


if __name__ == "__main__":
    main()
