"""Quickstart: categorize the results of one home-search query.

Reproduces the paper's running example — the "Homes" query of Section 1
("homes in the Seattle/Bellevue Area ... in the $200,000 to $300,000 price
range") — end to end:

1. generate the synthetic ListProperty relation,
2. generate a workload of past searches and preprocess it into count tables,
3. run the Homes query,
4. build the cost-based category tree and print it (the Figure 1 view),
5. report the estimated information-overload cost vs an uncategorized scan.

Run:  python examples/quickstart.py
"""

from repro import (
    CostBasedCategorizer,
    CostModel,
    PAPER_CONFIG,
    ProbabilityEstimator,
    build_paper_scale_workload,
    generate_homes,
    preprocess_workload,
    render_tree,
    summarize_tree,
)
from repro.data.geography import SEATTLE_BELLEVUE
from repro.sql import format_query, parse_query


def main() -> None:
    print("generating ListProperty (synthetic MSN House&Home stand-in) ...")
    homes = generate_homes(rows=20_000, seed=7)

    print("generating and preprocessing the workload ...")
    workload = build_paper_scale_workload(seed=41, query_count=8_000)
    statistics = preprocess_workload(
        workload, homes.schema, PAPER_CONFIG.separation_intervals
    )
    print(f"  {statistics.total_queries} logged queries scanned")

    # The "Homes" query: Seattle/Bellevue area, $200K-$300K.
    neighborhoods = ", ".join(
        f"'{name}'" for name in SEATTLE_BELLEVUE.neighborhood_names()
    )
    query = parse_query(
        f"SELECT * FROM ListProperty WHERE neighborhood IN ({neighborhoods}) "
        "AND price BETWEEN 200000 AND 300000"
    )
    rows = query.execute(homes)
    print(f"\nquery: {format_query(query)[:100]} ...")
    print(f"result set: {len(rows)} homes — too many to scan one by one\n")

    categorizer = CostBasedCategorizer(statistics, PAPER_CONFIG)
    tree = categorizer.categorize(rows, query)
    print(summarize_tree(tree))
    print()
    print(render_tree(tree, max_depth=2, max_children=4))

    model = CostModel(ProbabilityEstimator(statistics), PAPER_CONFIG)
    estimated = model.tree_cost_all(tree)
    print()
    print(f"estimated exploration cost (ALL scenario): {estimated:.0f} items")
    print(f"cost without categorization:               {len(rows)} items")
    print(f"expected saving:                           {len(rows) / estimated:.1f}x")


if __name__ == "__main__":
    main()
