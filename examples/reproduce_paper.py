"""Reproduce every table and figure of the paper's evaluation, in one run.

A reduced-scale version of the full benchmark harness (see benchmarks/
for the calibrated runs): executes the Section 6.2 simulated study, the
Section 6.3 user study, and the Figure 13 timing study, printing each
reproduced table/series next to the paper's reported values.

Run:  python examples/reproduce_paper.py           (takes a few minutes)
Run:  python examples/reproduce_paper.py --small   (reduced, < 1 minute)
"""

import sys

from repro import (
    AttrCostCategorizer,
    CostBasedCategorizer,
    NoCostCategorizer,
    PAPER_CONFIG,
    build_paper_scale_workload,
    generate_homes,
    preprocess_workload,
)
from repro.study import (
    format_series,
    format_table,
    run_simulated_study,
    run_timing_study,
    run_user_study,
)
from repro.study.stats import classify_correlation


def main() -> None:
    small = "--small" in sys.argv
    rows = 10_000 if small else 30_000
    queries = 5_000 if small else 12_000
    subsets, subset_size = (2, 20) if small else (8, 50)
    subjects = 11 if small else 33

    print(f"dataset: {rows} homes; workload: {queries} queries")
    homes = generate_homes(rows=rows, seed=7)
    workload = build_paper_scale_workload(seed=41, query_count=queries)
    techniques = [CostBasedCategorizer, AttrCostCategorizer, NoCostCategorizer]

    print("\n--- simulated cross-validated study (Section 6.2) ---")
    simulated = run_simulated_study(
        homes, workload, techniques, subset_count=subsets, subset_size=subset_size
    )
    print(
        format_table(
            ["Subset", "Correlation", "band"],
            [
                [name, f"{r:.2f}", classify_correlation(r)]
                for name, r in simulated.correlation_table()
            ],
            title="Table 1 (paper: subsets 0.16-0.98, All 0.90)",
        )
    )
    print(f"\nFigure 7 trend: y = {simulated.trend_slope():.3f}x "
          "(paper: y = 1.1002x)")
    print()
    print(
        format_series(
            simulated.fraction_examined_series(),
            [f"Subset {i + 1}" for i in range(subsets)],
            title="Figure 8: fraction of items examined "
            "(paper: cost-based 3-8x better)",
        )
    )

    print("\n--- real-life user study, simulated (Section 6.3) ---")
    study = run_user_study(homes, workload, techniques, subject_count=subjects)
    print(
        format_table(
            ["User", "Correlation"],
            [[u, f"{r:.2f}"] for u, r in study.correlation_table()],
            title="Table 2 (paper: average 0.67)",
        )
    )
    for metric, title in (
        ("cost_all", "Figure 9: items until all relevant found"),
        ("relevant_found", "Figure 10: relevant tuples found"),
        ("normalized_cost", "Figure 11: items per relevant tuple"),
        ("cost_one", "Figure 12: items until first relevant"),
    ):
        print()
        print(
            format_series(
                study.figure_series(metric),
                [f"Task {i + 1}" for i in range(4)],
                title=title,
                value_format="{:.1f}",
            )
        )
    print()
    print(
        format_table(
            ["Task", "Cost-based", "No categorization"],
            [[t, f"{c:.1f}", size] for t, c, size in study.vs_no_categorization()],
            title="Table 3 (paper: 17.1/17949 ... 8.0/7147)",
        )
    )
    print()
    print(
        format_table(
            ["Technique", "votes"],
            sorted(study.survey().items(), key=lambda kv: -kv[1]),
            title="Table 4 (paper: cost-based 8 of 9 responses)",
        )
    )

    print("\n--- execution time (Figure 13) ---")
    points = run_timing_study(
        homes, workload, m_values=(10, 20, 50, 100), query_count=20 if small else 60
    )
    print(
        format_table(
            ["M", "mean seconds"],
            [[p.m, f"{p.mean_seconds:.4f}"] for p in points],
            title="Figure 13 (paper: ~1s at paper scale on 2004 hardware)",
        )
    )


if __name__ == "__main__":
    main()
