"""Use the categorizer on your own relation — a laptop-catalog example.

The paper's technique is domain-independent: anything with a schema, a
relation, and a log of past selection queries can be categorized.  This
example builds a small laptop catalog from scratch (no repro.data
involved), writes a synthetic search log, and categorizes a broad query —
the pattern to copy for your own data (load the table from CSV via
``repro.relational.read_csv`` instead).

Run:  python examples/custom_dataset.py
"""

import random

from repro import (
    CostBasedCategorizer,
    CostModel,
    PAPER_CONFIG,
    ProbabilityEstimator,
    preprocess_workload,
    render_tree,
)
from repro.core.config import CategorizerConfig
from repro.relational import (
    Attribute,
    AttributeKind,
    DataType,
    SelectQuery,
    Table,
    TableSchema,
    TruePredicate,
)
from repro.workload import Workload


BRANDS = ("Lenovo", "Dell", "Apple", "HP", "Asus")
CPU_TIERS = ("i3", "i5", "i7", "i9")


def build_catalog(rows: int = 3_000, seed: int = 1) -> Table:
    """A synthetic laptop catalog with correlated price/specs."""
    schema = TableSchema(
        "Laptops",
        (
            Attribute("brand", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("cpu", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("ram_gb", DataType.INT, AttributeKind.NUMERIC),
            Attribute("screen_inches", DataType.FLOAT, AttributeKind.NUMERIC),
            Attribute("price", DataType.INT, AttributeKind.NUMERIC),
        ),
    )
    rng = random.Random(seed)
    table = Table(schema)
    for _ in range(rows):
        tier = rng.choices(range(4), weights=(2, 4, 3, 1))[0]
        ram = rng.choice((8, 8, 16, 16, 32, 64))
        price = int(
            (400 + 350 * tier + 8 * ram + rng.gauss(0, 120)) // 50 * 50
        )
        table.insert(
            {
                "brand": rng.choice(BRANDS),
                "cpu": CPU_TIERS[tier],
                "ram_gb": ram,
                "screen_inches": rng.choice((13.3, 14.0, 15.6, 16.0, 17.3)),
                "price": max(price, 300),
            }
        )
    return table


def build_search_log(queries: int = 2_000, seed: int = 2) -> Workload:
    """Synthetic shopper searches over the catalog."""
    rng = random.Random(seed)
    statements = []
    for _ in range(queries):
        parts = []
        if rng.random() < 0.7:
            count = rng.choice((1, 1, 2))
            brands = ", ".join(f"'{b}'" for b in rng.sample(BRANDS, count))
            parts.append(f"brand IN ({brands})")
        if rng.random() < 0.75:
            low = rng.choice((500, 700, 1000, 1000, 1500))
            parts.append(f"price BETWEEN {low} AND {low + rng.choice((300, 500, 500))}")
        if rng.random() < 0.55:
            parts.append(f"ram_gb >= {rng.choice((8, 16, 16, 32)):d}")
        if rng.random() < 0.3:
            cpu = rng.choice(CPU_TIERS[1:])
            parts.append(f"cpu IN ('{cpu}')")
        if not parts:
            parts.append("price BETWEEN 500 AND 1500")
        statements.append("SELECT * FROM Laptops WHERE " + " AND ".join(parts))
    return Workload.from_sql_strings(statements)


def main() -> None:
    catalog = build_catalog()
    log = build_search_log()

    # Domain-specific knobs: a 50-dollar splitpoint grid for price, a
    # smaller M (screens show fewer items than a property portal).
    config = CategorizerConfig(
        max_tuples_per_category=10,
        elimination_threshold=0.25,
        bucket_count=4,
        separation_intervals={"price": 50.0, "ram_gb": 8.0, "screen_inches": 0.1},
    )
    statistics = preprocess_workload(log, catalog.schema, config.separation_intervals)

    print("attribute usage fractions (drives elimination, x = 0.25):")
    for name in catalog.schema.names():
        print(f"  {name:15s} {statistics.usage_fraction(name):.2f}")

    query = SelectQuery("Laptops", TruePredicate())  # browse everything
    rows = query.execute(catalog)
    tree = CostBasedCategorizer(statistics, config).categorize(rows, query)

    print(f"\ncategorized {len(rows)} laptops:")
    print(render_tree(tree, max_depth=2, max_children=4))

    model = CostModel(ProbabilityEstimator(statistics), config)
    print(f"\nestimated exploration cost: {model.tree_cost_all(tree):.0f} "
          f"items vs {len(rows)} for a full scan")


if __name__ == "__main__":
    main()
